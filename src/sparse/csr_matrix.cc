#include "sparse/csr_matrix.h"

#include <algorithm>
#include <string>
#include <utility>

#include "linalg/blas.h"

namespace mips {

CsrMatrix CsrMatrix::FromDense(const ConstRowBlock& dense) {
  std::vector<Index> all(static_cast<std::size_t>(dense.rows()));
  for (Index r = 0; r < dense.rows(); ++r) {
    all[static_cast<std::size_t>(r)] = r;
  }
  return FromDenseRows(dense, all);
}

CsrMatrix CsrMatrix::FromDenseRows(const ConstRowBlock& dense,
                                   std::span<const Index> rows) {
  CsrMatrix m;
  m.rows_ = static_cast<Index>(rows.size());
  m.cols_ = dense.cols();
  m.row_ptr_.reserve(rows.size() + 1);
  m.row_ptr_.push_back(0);
  for (const Index src : rows) {
    MIPS_DCHECK_GE(src, 0);
    MIPS_DCHECK_LT(src, dense.rows());
    const Real* row = dense.Row(src);
    for (Index c = 0; c < m.cols_; ++c) {
      if (row[c] != Real{0}) {
        m.cols_idx_.push_back(c);
        m.values_.push_back(row[c]);
      }
    }
    m.row_ptr_.push_back(static_cast<int64_t>(m.values_.size()));
  }
  m.row_norms_.resize(static_cast<std::size_t>(m.rows_));
  for (Index r = 0; r < m.rows_; ++r) {
    m.row_norms_[static_cast<std::size_t>(r)] =
        Nrm2(m.values_.data() + m.row_ptr_[static_cast<std::size_t>(r)],
             m.RowNnz(r));
  }
  m.DcheckInvariants();
  return m;
}

StatusOr<CsrMatrix> CsrMatrix::FromTriples(
    Index rows, Index cols, std::span<const SparseTriple> triples) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument(
        "CsrMatrix::FromTriples: negative shape (" + std::to_string(rows) +
        " x " + std::to_string(cols) + ")");
  }
  for (const SparseTriple& t : triples) {
    if (t.row < 0 || t.row >= rows || t.col < 0 || t.col >= cols) {
      return Status::InvalidArgument(
          "CsrMatrix::FromTriples: coordinate (" + std::to_string(t.row) +
          ", " + std::to_string(t.col) + ") outside " + std::to_string(rows) +
          " x " + std::to_string(cols));
    }
  }

  // Stable-sort indices by (row, col); values stay addressable by the
  // original triple index.
  std::vector<std::size_t> order(triples.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return triples[a].row != triples[b].row
               ? triples[a].row < triples[b].row
               : triples[a].col < triples[b].col;
  });
  for (std::size_t i = 1; i < order.size(); ++i) {
    const SparseTriple& prev = triples[order[i - 1]];
    const SparseTriple& cur = triples[order[i]];
    if (prev.row == cur.row && prev.col == cur.col) {
      return Status::InvalidArgument(
          "CsrMatrix::FromTriples: duplicate coordinate (" +
          std::to_string(cur.row) + ", " + std::to_string(cur.col) + ")");
    }
  }

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(static_cast<std::size_t>(rows) + 1, 0);
  m.cols_idx_.reserve(order.size());
  m.values_.reserve(order.size());
  Index filled = 0;
  for (const std::size_t i : order) {
    const SparseTriple& t = triples[i];
    if (t.value == Real{0}) continue;  // compresses away, like FromDense
    while (filled < t.row) {
      ++filled;
      m.row_ptr_[static_cast<std::size_t>(filled)] =
          static_cast<int64_t>(m.values_.size());
    }
    m.cols_idx_.push_back(t.col);
    m.values_.push_back(t.value);
  }
  while (filled < rows) {
    ++filled;
    m.row_ptr_[static_cast<std::size_t>(filled)] =
        static_cast<int64_t>(m.values_.size());
  }
  m.row_norms_.resize(static_cast<std::size_t>(rows));
  for (Index r = 0; r < rows; ++r) {
    m.row_norms_[static_cast<std::size_t>(r)] =
        Nrm2(m.values_.data() + m.row_ptr_[static_cast<std::size_t>(r)],
             m.RowNnz(r));
  }
  m.DcheckInvariants();
  return m;
}

CsrMatrix::Stats CsrMatrix::ComputeStats() const {
  Stats s;
  s.rows = rows_;
  s.cols = cols_;
  s.nnz = nnz();
  s.density = density();
  if (rows_ == 0) return s;
  Index min_nnz = RowNnz(0);
  Index max_nnz = min_nnz;
  for (Index r = 1; r < rows_; ++r) {
    const Index n = RowNnz(r);
    min_nnz = std::min(min_nnz, n);
    max_nnz = std::max(max_nnz, n);
  }
  s.min_row_nnz = min_nnz;
  s.max_row_nnz = max_nnz;
  s.mean_row_nnz = static_cast<Real>(static_cast<double>(s.nnz) / rows_);
  return s;
}

void CsrMatrix::DcheckInvariants() const {
#ifdef MIPS_ENABLE_DCHECKS
  MIPS_DCHECK_EQ(row_ptr_.size(), static_cast<std::size_t>(rows_) + 1);
  MIPS_DCHECK_EQ(row_ptr_.front(), int64_t{0});
  MIPS_DCHECK_EQ(row_ptr_.back(), static_cast<int64_t>(values_.size()));
  MIPS_DCHECK_EQ(cols_idx_.size(), values_.size());
  for (Index r = 0; r < rows_; ++r) {
    MIPS_DCHECK_LE(row_ptr_[static_cast<std::size_t>(r)],
                   row_ptr_[static_cast<std::size_t>(r) + 1]);
    const std::span<const Index> cs = RowCols(r);
    for (std::size_t i = 0; i < cs.size(); ++i) {
      MIPS_DCHECK_GE(cs[i], 0);
      MIPS_DCHECK_LT(cs[i], cols_);
      if (i > 0) MIPS_DCHECK_LT(cs[i - 1], cs[i]);
    }
  }
#endif
}

}  // namespace mips
