#include "data/datasets.h"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace mips {
namespace {

// Full-scale dimensions from Table I.
constexpr int64_t kNetflixUsers = 480189;
constexpr int64_t kNetflixItems = 17770;
constexpr int64_t kNetflixRatings = 100480507;
constexpr int64_t kKddUsers = 1000990;
constexpr int64_t kKddItems = 624961;
constexpr int64_t kKddRatings = 252810175;
constexpr int64_t kR2Users = 1823179;
constexpr int64_t kR2Items = 136736;
constexpr int64_t kR2Ratings = 699640226;
constexpr int64_t kGloveUsers = 100000;
constexpr int64_t kGloveItems = 1093514;

// Generator calibrations per model family.  The decisive knob is
// item_norm_sigma: flat norms (Netflix explicit models) leave nothing for
// length-based pruning so BMM wins; skewed norms (R2, KDD, and to a lesser
// degree GloVe) concentrate the top-K mass in few long items so the
// indexes prune most of the catalog.  user_dispersion controls how tight
// k-means clusters are, i.e. how sharp MAXIMUS's theta_b bound is.
SyntheticModelConfig NetflixExplicitGen() {
  SyntheticModelConfig g;
  g.item_norm_sigma = 0.12;
  g.user_modes = 32;
  g.user_dispersion = 0.85;
  g.user_norm_sigma = 0.25;
  return g;
}

SyntheticModelConfig NetflixBprGen() {
  SyntheticModelConfig g;
  g.item_norm_sigma = 0.20;
  g.user_modes = 24;
  g.user_dispersion = 0.7;
  g.user_norm_sigma = 0.25;
  g.non_negative = true;
  return g;
}

SyntheticModelConfig R2Gen() {
  SyntheticModelConfig g;
  g.item_norm_sigma = 0.95;
  g.user_modes = 8;
  g.user_dispersion = 0.25;
  g.user_norm_sigma = 0.3;
  return g;
}

SyntheticModelConfig KddGen() {
  SyntheticModelConfig g;
  g.item_norm_sigma = 0.55;
  g.user_modes = 16;
  g.user_dispersion = 0.55;
  g.user_norm_sigma = 0.3;
  return g;
}

SyntheticModelConfig KddRefGen() {
  SyntheticModelConfig g;
  g.item_norm_sigma = 0.75;
  g.user_modes = 8;
  g.user_dispersion = 0.3;
  g.user_norm_sigma = 0.3;
  return g;
}

SyntheticModelConfig GloveGen() {
  SyntheticModelConfig g;
  g.item_norm_sigma = 0.38;
  g.user_modes = 64;
  g.user_dispersion = 0.6;
  g.user_norm_sigma = 0.35;
  return g;
}

ModelPreset MakePreset(const std::string& family, const std::string& dataset,
                       Index f, int64_t users, int64_t items,
                       double default_scale, SyntheticModelConfig gen,
                       uint64_t seed) {
  ModelPreset p;
  std::string lower = family;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  p.id = lower + "-" + std::to_string(f);
  p.display_name = family + ", f = " + std::to_string(f);
  p.dataset = dataset;
  p.factors = f;
  p.full_users = users;
  p.full_items = items;
  p.default_scale = default_scale;
  p.generator = gen;
  p.generator.name = p.display_name;
  p.generator.num_factors = f;
  p.generator.seed = seed;
  return p;
}

std::vector<ModelPreset> BuildPresets() {
  std::vector<ModelPreset> presets;
  uint64_t seed = 1000;

  // Netflix-DSGD: f in {10, 50, 100}.
  for (Index f : {10, 50, 100}) {
    presets.push_back(MakePreset("Netflix-DSGD", "Netflix", f, kNetflixUsers,
                                 kNetflixItems, 0.02, NetflixExplicitGen(),
                                 ++seed));
  }
  // Netflix-NOMAD: f in {10, 25, 50, 100}.
  for (Index f : {10, 25, 50, 100}) {
    presets.push_back(MakePreset("Netflix-NOMAD", "Netflix", f, kNetflixUsers,
                                 kNetflixItems, 0.02, NetflixExplicitGen(),
                                 ++seed));
  }
  // Netflix-BPR: f in {10, 25, 50, 100}.
  for (Index f : {10, 25, 50, 100}) {
    presets.push_back(MakePreset("Netflix-BPR", "Netflix", f, kNetflixUsers,
                                 kNetflixItems, 0.02, NetflixBprGen(),
                                 ++seed));
  }
  // R2-NOMAD: f in {10, 25, 50, 100}.
  for (Index f : {10, 25, 50, 100}) {
    presets.push_back(MakePreset("R2-NOMAD", "R2", f, kR2Users, kR2Items,
                                 0.015, R2Gen(), ++seed));
  }
  // KDD-NOMAD: f in {10, 25, 50, 100}.
  for (Index f : {10, 25, 50, 100}) {
    presets.push_back(MakePreset("KDD-NOMAD", "KDD", f, kKddUsers, kKddItems,
                                 0.004, KddGen(), ++seed));
  }
  // KDD-REF: f = 51.
  presets.push_back(MakePreset("KDD-REF", "KDD", 51, kKddUsers, kKddItems,
                               0.004, KddRefGen(), ++seed));
  // GloVe Twitter: f in {50, 100, 200}.
  for (Index f : {50, 100, 200}) {
    presets.push_back(MakePreset("GloVe-Twitter", "GloVe", f, kGloveUsers,
                                 kGloveItems, 0.02, GloveGen(), ++seed));
  }
  return presets;
}

}  // namespace

const std::vector<DatasetInfo>& AllDatasetInfos() {
  static const std::vector<DatasetInfo> kInfos = {
      {"Netflix Prize (Netflix)", kNetflixUsers, kNetflixItems,
       kNetflixRatings},
      {"Yahoo Music KDD (KDD)", kKddUsers, kKddItems, kKddRatings},
      {"Yahoo Music R2 (R2)", kR2Users, kR2Items, kR2Ratings},
      {"GloVe-Twitter", kGloveUsers, kGloveItems, 0},
  };
  return kInfos;
}

const std::vector<ModelPreset>& AllModelPresets() {
  static const std::vector<ModelPreset> kPresets = BuildPresets();
  return kPresets;
}

StatusOr<ModelPreset> FindModelPreset(const std::string& id) {
  for (const auto& preset : AllModelPresets()) {
    if (preset.id == id) return preset;
  }
  return Status::NotFound("unknown model preset: " + id);
}

ScaledDims ComputeScaledDims(const ModelPreset& preset,
                             double scale_multiplier) {
  const double scale = preset.default_scale * scale_multiplier;
  ScaledDims dims;
  const auto clamp_dim = [](double scaled, int64_t full, Index floor) {
    const int64_t v = static_cast<int64_t>(std::llround(scaled));
    const int64_t lo = std::min<int64_t>(floor, full);
    return static_cast<Index>(std::clamp<int64_t>(v, lo, full));
  };
  dims.users = clamp_dim(static_cast<double>(preset.full_users) * scale,
                         preset.full_users, 1000);
  dims.items = clamp_dim(static_cast<double>(preset.full_items) * scale,
                         preset.full_items, 800);
  return dims;
}

StatusOr<MFModel> MakeModel(const ModelPreset& preset,
                            double scale_multiplier) {
  if (scale_multiplier <= 0) {
    return Status::InvalidArgument("scale multiplier must be positive");
  }
  const ScaledDims dims = ComputeScaledDims(preset, scale_multiplier);
  SyntheticModelConfig config = preset.generator;
  config.num_users = dims.users;
  config.num_items = dims.items;
  return GenerateSyntheticModel(config);
}

}  // namespace mips
