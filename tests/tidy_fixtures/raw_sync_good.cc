// mips-raw-sync GOOD fixture: the same structures written with the
// annotated wrappers from common/mutex.h.  Must produce no mips-raw-sync
// diagnostics — including none leaking from mutex.h itself, whose
// internal std members are the one sanctioned home of the raw types.

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace fixture {

class GoodQueue {
 public:
  void Push(int v) EXCLUDES(mu_) {
    mips::MutexLock lock(mu_);
    value_ = v;
    cv_.NotifyOne();
  }

  int Pop() EXCLUDES(mu_) {
    mips::MutexLock lock(mu_);
    cv_.Wait(lock);
    return value_;
  }

 private:
  mips::Mutex mu_;
  mips::CondVar cv_;
  int value_ GUARDED_BY(mu_) = 0;
};

class GoodCache {
 public:
  int Read() const EXCLUDES(mu_) {
    mips::ReaderMutexLock lock(mu_);
    return value_;
  }

 private:
  mutable mips::SharedMutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace fixture
