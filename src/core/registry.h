// Name-based solver factory for benches, examples, and the OPTIMUS driver.

#ifndef MIPS_CORE_REGISTRY_H_
#define MIPS_CORE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "solvers/solver.h"

namespace mips {

/// Creates a solver by name: "naive", "bmm", "lemp", "fexipro-si",
/// "fexipro-sir", or "maximus" (paper-default options).  NotFound for
/// unknown names.
StatusOr<std::unique_ptr<MipsSolver>> CreateSolver(const std::string& name);

/// All names CreateSolver accepts, in display order.
std::vector<std::string> AvailableSolvers();

}  // namespace mips

#endif  // MIPS_CORE_REGISTRY_H_
