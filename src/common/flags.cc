#include "common/flags.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace mips {
namespace {

std::string ToString(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

void FlagSet::Double(const std::string& name, double* target,
                     std::string help) {
  flags_.push_back(
      {name, Kind::kDouble, target, std::move(help), ToString(*target)});
}

void FlagSet::Int64(const std::string& name, int64_t* target,
                    std::string help) {
  flags_.push_back({name, Kind::kInt64, target, std::move(help),
                    std::to_string(*target)});
}

void FlagSet::Int32(const std::string& name, int32_t* target,
                    std::string help) {
  flags_.push_back({name, Kind::kInt32, target, std::move(help),
                    std::to_string(*target)});
}

void FlagSet::Bool(const std::string& name, bool* target, std::string help) {
  flags_.push_back({name, Kind::kBool, target, std::move(help),
                    *target ? "true" : "false"});
}

void FlagSet::String(const std::string& name, std::string* target,
                     std::string help) {
  flags_.push_back({name, Kind::kString, target, std::move(help), *target});
}

Status FlagSet::Assign(Flag& flag, const std::string& value) {
  try {
    switch (flag.kind) {
      case Kind::kDouble:
        *static_cast<double*>(flag.target) = std::stod(value);
        break;
      case Kind::kInt64:
        *static_cast<int64_t*>(flag.target) = std::stoll(value);
        break;
      case Kind::kInt32:
        *static_cast<int32_t*>(flag.target) =
            static_cast<int32_t>(std::stol(value));
        break;
      case Kind::kBool:
        if (value == "true" || value == "1") {
          *static_cast<bool*>(flag.target) = true;
        } else if (value == "false" || value == "0") {
          *static_cast<bool*>(flag.target) = false;
        } else {
          return Status::InvalidArgument("bad bool for --" + flag.name + ": " +
                                         value);
        }
        break;
      case Kind::kString:
        *static_cast<std::string*>(flag.target) = value;
        break;
    }
  } catch (const std::exception&) {
    return Status::InvalidArgument("bad value for --" + flag.name + ": " +
                                   value);
  }
  return Status::OK();
}

Status FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf("%s", Usage().c_str());
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected positional argument: " + arg);
    }
    arg = arg.substr(2);
    std::string name;
    std::string value;
    const std::size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      value.clear();
    }

    Flag* match = nullptr;
    for (auto& flag : flags_) {
      if (flag.name == name) {
        match = &flag;
        break;
      }
    }
    if (match == nullptr) {
      return Status::InvalidArgument("unknown flag: --" + name + "\n" +
                                     Usage());
    }
    if (eq == std::string::npos) {
      if (match->kind == Kind::kBool) {
        value = "true";  // `--verbose` with no value means true.
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("missing value for --" + name);
      }
    }
    MIPS_RETURN_IF_ERROR(Assign(*match, value));
  }
  return Status::OK();
}

std::string FlagSet::Usage() const {
  std::string out = "flags:\n";
  for (const auto& flag : flags_) {
    out += "  --" + flag.name + "  (" + flag.help +
           ") [default: " + flag.default_value + "]\n";
  }
  return out;
}

}  // namespace mips
