// Tests for the async batching & admission-control subsystem
// (serve/batching_engine.h) and the batched new-user serving paths it
// rides on (MipsEngine::TopKNewUsers, ShardedMipsEngine::TopKNewUsers).
//
// The load-bearing property throughout: coalescing must be invisible in
// the answers.  A vector served inside any batch must produce the
// bit-for-bit identical row to the same vector served alone — same
// items, same scores to the last ulp — because the GEMM computes each
// (row, item) score with a fixed per-element operation sequence that
// does not depend on the batch's row count.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/engine.h"
#include "core/serving.h"
#include "serve/batching_engine.h"
#include "shard/sharded_engine.h"
#include "test_util.h"

namespace mips {
namespace {

using testing::MakeTestModel;
using testing::RandomMatrix;

// ---------------------------------------------------------------------
// Bit-for-bit exactness of the batched new-user paths.
// ---------------------------------------------------------------------

void ExpectBitIdenticalRow(const TopKEntry* got, const TopKEntry* want,
                           Index k, const std::string& context) {
  for (Index e = 0; e < k; ++e) {
    EXPECT_EQ(got[e].item, want[e].item) << context << " entry " << e;
    // EXPECT_EQ on floats: bit-for-bit is the contract, not "close".
    EXPECT_EQ(got[e].score, want[e].score) << context << " entry " << e;
  }
}

TEST(BatchedNewUsersTest, BatchedMatchesSingletonBitForBit) {
  const auto model = MakeTestModel(400, 600, 24);
  const Index kBatch = 37;
  const Matrix queries = RandomMatrix(kBatch, model.num_factors(), 99);

  EngineOptions options;
  options.k = 8;
  options.solvers = {"bmm", "maximus", "lemp"};
  auto engine = MipsEngine::Open(ConstRowBlock(model.users), ConstRowBlock(model.items),
                                 options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  // Cover both serving families: the dense-GEMM path (bmm/lemp) and the
  // MAXIMUS per-row dynamic walk.
  for (const char* forced : {"bmm", "lemp", "maximus"}) {
    ASSERT_TRUE((*engine)->ForceStrategy(forced).ok());
    for (const Index k : {1, 8, 11}) {
      TopKResult batched;
      ASSERT_TRUE(
          (*engine)->TopKNewUsers(queries.data(), kBatch, k, &batched).ok());
      for (Index r = 0; r < kBatch; ++r) {
        std::vector<TopKEntry> alone(static_cast<std::size_t>(k));
        ASSERT_TRUE(
            (*engine)->TopKNewUser(queries.Row(r), k, alone.data()).ok());
        ExpectBitIdenticalRow(batched.Row(r), alone.data(), k,
                              std::string(forced) + " k=" +
                                  std::to_string(k) + " row " +
                                  std::to_string(r));
      }
    }
  }
}

TEST(BatchedNewUsersTest, ShardedBatchedMatchesUnshardedBitForBit) {
  const auto model = MakeTestModel(300, 500, 16);
  const Index kBatch = 21;
  const Index k = 7;
  const Matrix queries = RandomMatrix(kBatch, model.num_factors(), 31);

  EngineOptions engine_options;
  engine_options.k = k;
  engine_options.solvers = {"bmm", "lemp"};
  auto unsharded = MipsEngine::Open(ConstRowBlock(model.users), ConstRowBlock(model.items),
                                    engine_options);
  ASSERT_TRUE(unsharded.ok()) << unsharded.status().ToString();
  TopKResult reference;
  ASSERT_TRUE(
      (*unsharded)->TopKNewUsers(queries.data(), kBatch, k, &reference).ok());

  for (const int shards : {1, 3}) {
    ShardedEngineOptions options;
    options.num_shards = shards;
    options.engine = engine_options;
    auto sharded = ShardedMipsEngine::Open(ConstRowBlock(model.users),
                                           ConstRowBlock(model.items), options);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

    TopKResult batched;
    ASSERT_TRUE(
        (*sharded)->TopKNewUsers(queries.data(), kBatch, k, &batched).ok());
    for (Index r = 0; r < kBatch; ++r) {
      ExpectBitIdenticalRow(batched.Row(r), reference.Row(r), k,
                            std::to_string(shards) + " shards row " +
                                std::to_string(r));
      // And the sharded singleton path agrees with its own batched path.
      std::vector<TopKEntry> alone(static_cast<std::size_t>(k));
      ASSERT_TRUE(
          (*sharded)->TopKNewUser(queries.Row(r), k, alone.data()).ok());
      ExpectBitIdenticalRow(alone.data(), batched.Row(r), k,
                            std::to_string(shards) + " shards singleton " +
                                std::to_string(r));
    }
  }
}

TEST(BatchedNewUsersTest, ValidatesArguments) {
  const auto model = MakeTestModel(60, 80, 8);
  EngineOptions options;
  options.k = 4;
  auto engine = MipsEngine::Open(ConstRowBlock(model.users), ConstRowBlock(model.items),
                                 options);
  ASSERT_TRUE(engine.ok());
  const Matrix queries = RandomMatrix(2, model.num_factors(), 5);
  TopKResult out;
  EXPECT_FALSE((*engine)->TopKNewUsers(nullptr, 2, 4, &out).ok());
  EXPECT_FALSE((*engine)->TopKNewUsers(queries.data(), 0, 4, &out).ok());
  EXPECT_FALSE((*engine)->TopKNewUsers(queries.data(), 2, 0, &out).ok());
}

// ---------------------------------------------------------------------
// Shape-keyed strategy decisions (EngineOptions::batch_shape_decisions).
// ---------------------------------------------------------------------

TEST(BatchShapeDecisionsTest, EachShapeBucketDecidesOnce) {
  const auto model = MakeTestModel(300, 400, 16);
  EngineOptions options;
  options.k = 5;
  options.solvers = {"bmm", "lemp"};
  options.batch_shape_decisions = true;
  options.redecide_on_new_k = true;
  auto engine = MipsEngine::Open(ConstRowBlock(model.users), ConstRowBlock(model.items),
                                 options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const Matrix queries = RandomMatrix(64, model.num_factors(), 17);
  TopKResult out;
  // Buckets 1, 2, 64: three distinct shape decisions beyond the opening
  // (population-scale, bucket 0) one.
  ASSERT_TRUE((*engine)->TopKNewUsers(queries.data(), 1, 5, &out).ok());
  ASSERT_TRUE((*engine)->TopKNewUsers(queries.data(), 2, 5, &out).ok());
  ASSERT_TRUE((*engine)->TopKNewUsers(queries.data(), 64, 5, &out).ok());
  const int64_t after_first_sweep = (*engine)->stats().redecisions;
  EXPECT_EQ(after_first_sweep, 3);

  // Same shapes again: pure cache hits, no further decisions.  Rows 33..
  // 64 share the 64 bucket (next power of two), so 50 hits it too.
  ASSERT_TRUE((*engine)->TopKNewUsers(queries.data(), 1, 5, &out).ok());
  ASSERT_TRUE((*engine)->TopKNewUsers(queries.data(), 50, 5, &out).ok());
  EXPECT_EQ((*engine)->stats().redecisions, after_first_sweep);
}

TEST(BatchShapeDecisionsTest, OffByDefaultSharesOneDecision) {
  const auto model = MakeTestModel(300, 400, 16);
  EngineOptions options;
  options.k = 5;
  options.solvers = {"bmm", "lemp"};
  auto engine = MipsEngine::Open(ConstRowBlock(model.users), ConstRowBlock(model.items),
                                 options);
  ASSERT_TRUE(engine.ok());

  const Matrix queries = RandomMatrix(64, model.num_factors(), 17);
  TopKResult out;
  ASSERT_TRUE((*engine)->TopKNewUsers(queries.data(), 1, 5, &out).ok());
  ASSERT_TRUE((*engine)->TopKNewUsers(queries.data(), 64, 5, &out).ok());
  // Both rode the opening (bucket 0) decision at the opening k.
  EXPECT_EQ((*engine)->stats().redecisions, 0);
}

// ---------------------------------------------------------------------
// BatchingEngine coalescing mechanics, against a counting fake backend.
// ---------------------------------------------------------------------

/// A deterministic backend that records every batch shape and can be
/// paused (requests block inside the backend until Release).
class FakeBackend {
 public:
  explicit FakeBackend(Index num_factors) : num_factors_(num_factors) {}

  BatchingEngine::Backend AsBackend() {
    return [this](const Real* vectors, Index rows, Index k, TopKResult* out) {
      {
        MutexLock lock(mu_);
        ++calls_;
        batch_rows_.push_back(rows);
        while (paused_) cv_.Wait(lock);
      }
      *out = TopKResult(rows, k);
      for (Index r = 0; r < rows; ++r) {
        TopKEntry* row = out->Row(r);
        for (Index e = 0; e < k; ++e) {
          // Echo the row's first coordinate so callers can check their
          // answer came from their own vector.
          row[e].item = e;
          row[e].score =
              vectors[static_cast<std::size_t>(r) *
                      static_cast<std::size_t>(num_factors_)] -
              static_cast<Real>(e);
        }
      }
      return Status::OK();
    };
  }

  void Pause() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    paused_ = true;
  }
  void Release() EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      paused_ = false;
    }
    cv_.NotifyAll();
  }
  std::vector<Index> batch_rows() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return batch_rows_;
  }
  int calls() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return calls_;
  }

 private:
  Index num_factors_;
  mutable Mutex mu_;
  CondVar cv_;
  bool paused_ GUARDED_BY(mu_) = false;
  int calls_ GUARDED_BY(mu_) = 0;
  std::vector<Index> batch_rows_ GUARDED_BY(mu_);
};

constexpr Index kF = 4;
constexpr double kNeverFlushMs = 3600 * 1000.0;

struct Client {
  std::vector<Real> vector;
  std::vector<TopKEntry> row;
  std::future<Status> future;
};

std::vector<Client> MakeClients(Index count, Index k) {
  std::vector<Client> clients(static_cast<std::size_t>(count));
  for (Index i = 0; i < count; ++i) {
    Client& c = clients[static_cast<std::size_t>(i)];
    c.vector.assign(static_cast<std::size_t>(kF), 0);
    c.vector[0] = static_cast<Real>(i);
    c.row.resize(static_cast<std::size_t>(k));
  }
  return clients;
}

TEST(BatchingEngineTest, FlushBoundaries) {
  // 63, 64, and 65 concurrent submissions against max_batch_rows = 64
  // with an effectively infinite wait: only full batches dispatch on
  // their own; stragglers need Flush.
  for (const Index submitted : {Index{63}, Index{64}, Index{65}}) {
    FakeBackend backend(kF);
    BatchingOptions options;
    options.max_batch_rows = 64;
    options.max_wait_ms = kNeverFlushMs;
    options.max_queue_rows = 256;
    auto engine = BatchingEngine::Create(backend.AsBackend(), kF, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();

    const Index k = 3;
    std::vector<Client> clients = MakeClients(submitted, k);
    for (Client& c : clients) {
      c.future = (*engine)->SubmitNewUser(c.vector.data(), k, c.row.data());
    }
    (*engine)->Flush();
    for (Index i = 0; i < submitted; ++i) {
      Client& c = clients[static_cast<std::size_t>(i)];
      ASSERT_TRUE(c.future.get().ok()) << "request " << i;
      EXPECT_EQ(c.row[0].score, static_cast<Real>(i));
      EXPECT_EQ(c.row[0].item, 0);
    }

    const std::vector<Index> batches = backend.batch_rows();
    Index total = 0;
    for (const Index rows : batches) {
      EXPECT_LE(rows, 64);
      total += rows;
    }
    EXPECT_EQ(total, submitted);
    const BatchingEngine::Stats stats = (*engine)->stats();
    EXPECT_EQ(stats.submitted, submitted);
    EXPECT_EQ(stats.served, submitted);
    EXPECT_EQ(stats.shed, 0);
    EXPECT_EQ(stats.expired, 0);
    if (submitted == 63) {
      // Nothing was full: exactly one forced batch of 63.
      EXPECT_EQ(batches, std::vector<Index>{63});
      EXPECT_EQ(stats.size_flushes, 0);
      EXPECT_EQ(stats.batch_size_histogram.at(63), 1);
    } else if (submitted == 64) {
      EXPECT_EQ(batches, std::vector<Index>{64});
      EXPECT_EQ(stats.size_flushes, 1);
      EXPECT_EQ(stats.batch_size_histogram.at(64), 1);
    } else {
      EXPECT_EQ(batches, (std::vector<Index>{64, 1}));
      EXPECT_EQ(stats.size_flushes, 1);
      EXPECT_EQ(stats.batch_size_histogram.at(64), 1);
      EXPECT_EQ(stats.batch_size_histogram.at(1), 1);
    }
  }
}

TEST(BatchingEngineTest, TimeoutFlushesPartialBatch) {
  FakeBackend backend(kF);
  BatchingOptions options;
  options.max_batch_rows = 64;
  options.max_wait_ms = 2;
  auto engine = BatchingEngine::Create(backend.AsBackend(), kF, options);
  ASSERT_TRUE(engine.ok());

  const Index k = 2;
  std::vector<Client> clients = MakeClients(3, k);
  for (Client& c : clients) {
    c.future = (*engine)->SubmitNewUser(c.vector.data(), k, c.row.data());
  }
  // No Flush: the bounded delay alone must dispatch them.
  for (Client& c : clients) ASSERT_TRUE(c.future.get().ok());
  const BatchingEngine::Stats stats = (*engine)->stats();
  EXPECT_EQ(stats.served, 3);
  EXPECT_GE(stats.timeout_flushes, 1);
  EXPECT_EQ(stats.shed, 0);
}

TEST(BatchingEngineTest, CoalescesPerK) {
  // Rows of one GEMM must share k: interleaved k=2 / k=5 submissions
  // must come out as homogeneous batches.
  FakeBackend backend(kF);
  BatchingOptions options;
  options.max_batch_rows = 8;
  options.max_wait_ms = kNeverFlushMs;
  auto engine = BatchingEngine::Create(backend.AsBackend(), kF, options);
  ASSERT_TRUE(engine.ok());

  std::vector<Client> small = MakeClients(5, 2);
  std::vector<Client> large = MakeClients(5, 5);
  for (Index i = 0; i < 5; ++i) {
    Client& s = small[static_cast<std::size_t>(i)];
    Client& l = large[static_cast<std::size_t>(i)];
    s.future = (*engine)->SubmitNewUser(s.vector.data(), 2, s.row.data());
    l.future = (*engine)->SubmitNewUser(l.vector.data(), 5, l.row.data());
  }
  (*engine)->Flush();
  for (Client& c : small) ASSERT_TRUE(c.future.get().ok());
  for (Client& c : large) ASSERT_TRUE(c.future.get().ok());
  // Two homogeneous batches of 5, not one mixed batch of 10.
  EXPECT_EQ(backend.batch_rows(), (std::vector<Index>{5, 5}));
}

TEST(BatchingEngineTest, DeadlineExpiresQueuedRequest) {
  FakeBackend backend(kF);
  BatchingOptions options;
  options.max_batch_rows = 64;
  options.max_wait_ms = kNeverFlushMs;  // nothing dispatches on its own
  auto engine = BatchingEngine::Create(backend.AsBackend(), kF, options);
  ASSERT_TRUE(engine.ok());

  const Index k = 2;
  std::vector<Client> clients = MakeClients(1, k);
  clients[0].future = (*engine)->SubmitNewUser(clients[0].vector.data(), k,
                                               clients[0].row.data(),
                                               /*deadline_ms=*/20);
  const Status status = clients[0].future.get();
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded)
      << status.ToString();
  const BatchingEngine::Stats stats = (*engine)->stats();
  EXPECT_EQ(stats.expired, 1);
  EXPECT_EQ(stats.served, 0);
  EXPECT_EQ(backend.calls(), 0);
}

TEST(BatchingEngineTest, ShedPolicyFailsFastAtTheBound) {
  FakeBackend backend(kF);
  backend.Pause();  // hold admitted rows outstanding inside the backend
  BatchingOptions options;
  options.max_batch_rows = 1;  // every submission dispatches immediately
  options.max_queue_rows = 2;
  options.max_wait_ms = kNeverFlushMs;
  options.overload_policy = OverloadPolicy::kShed;
  auto engine = BatchingEngine::Create(backend.AsBackend(), kF, options);
  ASSERT_TRUE(engine.ok());

  const Index k = 2;
  std::vector<Client> clients = MakeClients(3, k);
  clients[0].future =
      (*engine)->SubmitNewUser(clients[0].vector.data(), k,
                               clients[0].row.data());
  clients[1].future =
      (*engine)->SubmitNewUser(clients[1].vector.data(), k,
                               clients[1].row.data());
  // Third submission finds 2 outstanding rows against a bound of 2.
  clients[2].future =
      (*engine)->SubmitNewUser(clients[2].vector.data(), k,
                               clients[2].row.data());
  const Status shed_status = clients[2].future.get();
  EXPECT_EQ(shed_status.code(), StatusCode::kResourceExhausted)
      << shed_status.ToString();

  backend.Release();
  ASSERT_TRUE(clients[0].future.get().ok());
  ASSERT_TRUE(clients[1].future.get().ok());
  const BatchingEngine::Stats stats = (*engine)->stats();
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(stats.served, 2);
  EXPECT_EQ(stats.max_queue_rows_observed, 2);
}

TEST(BatchingEngineTest, BlockPolicyWaitsForCapacity) {
  FakeBackend backend(kF);
  backend.Pause();
  BatchingOptions options;
  options.max_batch_rows = 1;
  options.max_queue_rows = 1;
  options.max_wait_ms = kNeverFlushMs;
  options.overload_policy = OverloadPolicy::kBlock;
  auto engine = BatchingEngine::Create(backend.AsBackend(), kF, options);
  ASSERT_TRUE(engine.ok());

  const Index k = 2;
  std::vector<Client> clients = MakeClients(2, k);
  clients[0].future =
      (*engine)->SubmitNewUser(clients[0].vector.data(), k,
                               clients[0].row.data());
  // The second admission must block, so run it on its own thread.
  std::atomic<bool> admitted{false};
  std::thread blocked([&] {
    clients[1].future =
        (*engine)->SubmitNewUser(clients[1].vector.data(), k,
                                 clients[1].row.data());
    admitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(admitted.load());  // still blocked at the bound

  backend.Release();
  blocked.join();
  ASSERT_TRUE(clients[0].future.get().ok());
  ASSERT_TRUE(clients[1].future.get().ok());
  const BatchingEngine::Stats stats = (*engine)->stats();
  EXPECT_EQ(stats.blocked, 1);
  EXPECT_EQ(stats.served, 2);
  EXPECT_EQ(stats.shed, 0);
}

TEST(BatchingEngineTest, DropExpiredPolicyShedsWhenNothingExpired) {
  // Nothing in the pending queue is expired, so kDropExpired degrades
  // to shedding.
  FakeBackend backend(kF);
  backend.Pause();
  BatchingOptions options;
  options.max_batch_rows = 1;
  options.max_queue_rows = 1;
  options.max_wait_ms = kNeverFlushMs;
  options.overload_policy = OverloadPolicy::kDropExpired;
  auto engine = BatchingEngine::Create(backend.AsBackend(), kF, options);
  ASSERT_TRUE(engine.ok());

  const Index k = 2;
  std::vector<Client> clients = MakeClients(2, k);
  clients[0].future =
      (*engine)->SubmitNewUser(clients[0].vector.data(), k,
                               clients[0].row.data());
  clients[1].future =
      (*engine)->SubmitNewUser(clients[1].vector.data(), k,
                               clients[1].row.data());
  EXPECT_EQ(clients[1].future.get().code(), StatusCode::kResourceExhausted);
  backend.Release();
  ASSERT_TRUE(clients[0].future.get().ok());
  EXPECT_EQ((*engine)->stats().shed, 1);
}

TEST(BatchingEngineTest, ShutdownDrainsPendingRequests) {
  FakeBackend backend(kF);
  BatchingOptions options;
  options.max_batch_rows = 64;
  options.max_wait_ms = kNeverFlushMs;
  const Index k = 2;
  std::vector<Client> clients = MakeClients(7, k);
  {
    auto engine = BatchingEngine::Create(backend.AsBackend(), kF, options);
    ASSERT_TRUE(engine.ok());
    for (Client& c : clients) {
      c.future = (*engine)->SubmitNewUser(c.vector.data(), k, c.row.data());
    }
    // Destruction must serve everything already admitted.
  }
  for (Index i = 0; i < 7; ++i) {
    Client& c = clients[static_cast<std::size_t>(i)];
    ASSERT_TRUE(c.future.get().ok()) << "request " << i;
    EXPECT_EQ(c.row[0].score, static_cast<Real>(i));
  }
}

TEST(BatchingEngineTest, RejectsInvalidArgumentsAndOptions) {
  FakeBackend backend(kF);
  BatchingOptions bad;
  bad.max_batch_rows = 0;
  EXPECT_FALSE(BatchingEngine::Create(backend.AsBackend(), kF, bad).ok());
  bad = BatchingOptions();
  bad.max_queue_rows = 4;
  bad.max_batch_rows = 8;
  EXPECT_FALSE(BatchingEngine::Create(backend.AsBackend(), kF, bad).ok());
  bad = BatchingOptions();
  bad.executor_threads = 0;
  EXPECT_FALSE(BatchingEngine::Create(backend.AsBackend(), kF, bad).ok());
  EXPECT_FALSE(BatchingEngine::Create(nullptr, kF, BatchingOptions()).ok());

  auto engine =
      BatchingEngine::Create(backend.AsBackend(), kF, BatchingOptions());
  ASSERT_TRUE(engine.ok());
  TopKEntry row[2];
  Real vec[kF] = {0, 0, 0, 0};
  EXPECT_FALSE((*engine)->SubmitNewUser(nullptr, 2, row).get().ok());
  EXPECT_FALSE((*engine)->SubmitNewUser(vec, 0, row).get().ok());
  EXPECT_FALSE((*engine)->SubmitNewUser(vec, 2, nullptr).get().ok());
}

TEST(BatchingEngineTest, ParsesOverloadPolicies) {
  EXPECT_EQ(*ParseOverloadPolicy("block"), OverloadPolicy::kBlock);
  EXPECT_EQ(*ParseOverloadPolicy("shed"), OverloadPolicy::kShed);
  EXPECT_EQ(*ParseOverloadPolicy("drop_expired"),
            OverloadPolicy::kDropExpired);
  EXPECT_FALSE(ParseOverloadPolicy("nope").ok());
  EXPECT_STREQ(ToString(OverloadPolicy::kShed), "shed");
}

// ---------------------------------------------------------------------
// End-to-end: real engines behind the batching front.
// ---------------------------------------------------------------------

TEST(BatchingEngineTest, ConcurrentCallersGetSingletonAnswers) {
  const auto model = MakeTestModel(300, 500, 16);
  EngineOptions engine_options;
  engine_options.k = 6;
  engine_options.solvers = {"bmm", "lemp"};
  engine_options.batch_shape_decisions = true;
  auto engine = MipsEngine::Open(ConstRowBlock(model.users), ConstRowBlock(model.items),
                                 engine_options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  const Index kThreads = 8;
  const Index kPerThread = 25;
  const Index k = 6;
  const Matrix queries =
      RandomMatrix(kThreads * kPerThread, model.num_factors(), 3);
  // Reference rows served alone, before any coalescing.
  TopKResult reference;
  ASSERT_TRUE((*engine)
                  ->TopKNewUsers(queries.data(), kThreads * kPerThread, k,
                                 &reference)
                  .ok());

  BatchingOptions options;
  options.max_batch_rows = 16;
  options.max_wait_ms = 1;
  options.executor_threads = 2;
  auto batching = BatchingEngine::Create(engine->get(), options);
  ASSERT_TRUE(batching.ok()) << batching.status().ToString();

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (Index t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<TopKEntry> row(static_cast<std::size_t>(k));
      for (Index i = 0; i < kPerThread; ++i) {
        const Index q = t * kPerThread + i;
        const Status status =
            (*batching)->TopKNewUser(queries.Row(q), k, row.data());
        if (!status.ok()) {
          ++failures;
          continue;
        }
        const TopKEntry* want = reference.Row(q);
        for (Index e = 0; e < k; ++e) {
          if (row[static_cast<std::size_t>(e)].item != want[e].item ||
              row[static_cast<std::size_t>(e)].score != want[e].score) {
            ++failures;
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const BatchingEngine::Stats stats = (*batching)->stats();
  EXPECT_EQ(stats.served, kThreads * kPerThread);
  EXPECT_EQ(stats.shed + stats.expired, 0);
  // Sync callers park on their futures while batches form, so at least
  // some coalescing must have happened across 8 concurrent threads.
  EXPECT_LT(stats.batches_dispatched, stats.served);
}

TEST(ServingSessionBatchingTest, BatchingSessionMatchesPlainSession) {
  const auto model = MakeTestModel(250, 400, 12);
  ServingOptions plain;
  plain.k = 5;
  plain.strategies = {"bmm", "lemp"};
  auto reference_session =
      ServingSession::Open(ConstRowBlock(model.users), ConstRowBlock(model.items), plain);
  ASSERT_TRUE(reference_session.ok());
  EXPECT_EQ((*reference_session)->batching_engine(), nullptr);

  ServingOptions batched = plain;
  batched.batching = true;
  batched.batching_options.max_batch_rows = 8;
  batched.batching_options.max_wait_ms = 1;
  auto session =
      ServingSession::Open(ConstRowBlock(model.users), ConstRowBlock(model.items), batched);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  ASSERT_NE((*session)->batching_engine(), nullptr);

  const Index kQueries = 40;
  const Matrix queries = RandomMatrix(kQueries, model.num_factors(), 77);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::vector<TopKEntry> row(5);
      std::vector<TopKEntry> want(5);
      for (Index q = t; q < kQueries; q += 4) {
        if (!(*session)->ServeNewUser(queries.Row(q), row.data()).ok() ||
            !(*reference_session)
                 ->ServeNewUser(queries.Row(q), want.data())
                 .ok()) {
          ++failures;
          continue;
        }
        for (Index e = 0; e < 5; ++e) {
          if (row[static_cast<std::size_t>(e)].item !=
                  want[static_cast<std::size_t>(e)].item ||
              row[static_cast<std::size_t>(e)].score !=
                  want[static_cast<std::size_t>(e)].score) {
            ++failures;
            break;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ((*session)->stats().new_users_served, kQueries);

  // Async admission with a deadline resolves too.
  std::vector<TopKEntry> row(5);
  auto future = (*session)->SubmitNewUser(queries.Row(0), row.data(),
                                          /*deadline_ms=*/1000);
  EXPECT_TRUE(future.get().ok());

  // Non-batching sessions refuse async admission.
  auto refused = (*reference_session)->SubmitNewUser(queries.Row(0),
                                                     row.data());
  EXPECT_EQ(refused.get().code(), StatusCode::kFailedPrecondition);
}

TEST(ServingSessionBatchingTest, ShardedBatchingSessionServes) {
  const auto model = MakeTestModel(200, 300, 12);
  ServingOptions options;
  options.k = 4;
  options.strategies = {"bmm", "lemp"};
  options.num_shards = 3;
  options.batching = true;
  options.batching_options.max_batch_rows = 4;
  options.batching_options.max_wait_ms = 1;
  auto session =
      ServingSession::Open(ConstRowBlock(model.users), ConstRowBlock(model.items), options);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  ASSERT_NE((*session)->batching_engine(), nullptr);
  ASSERT_NE((*session)->sharded_engine(), nullptr);

  const Matrix queries = RandomMatrix(10, model.num_factors(), 13);
  std::vector<TopKEntry> row(4);
  std::vector<TopKEntry> want(4);
  for (Index q = 0; q < 10; ++q) {
    ASSERT_TRUE((*session)->ServeNewUser(queries.Row(q), row.data()).ok());
    ASSERT_TRUE((*session)
                    ->sharded_engine()
                    ->TopKNewUser(queries.Row(q), 4, want.data())
                    .ok());
    ExpectBitIdenticalRow(row.data(), want.data(), 4,
                          "sharded row " + std::to_string(q));
  }
}

}  // namespace
}  // namespace mips
