// Cross-module integration tests: all solvers agree on realistic preset
// workloads; OPTIMUS end-to-end on presets; the approximate cluster
// baseline's recall behavior; dynamic-user serving (Section III-E); and a
// train -> save -> load -> serve pipeline.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "core/approx_cluster.h"
#include "core/maximus.h"
#include "core/optimus.h"
#include "core/registry.h"
#include "data/datasets.h"
#include "data/io.h"
#include "data/mf_trainer.h"
#include "solvers/bmm.h"
#include "test_util.h"

namespace mips {
namespace {

using ::mips::testing::AllUsers;
using ::mips::testing::ExpectSameTopKScores;
using ::mips::testing::ExpectValidTopK;
using ::mips::testing::MakeTestModel;

// Every solver must produce identical exact top-K on down-scaled versions
// of paper presets from both regimes.
class PresetParityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PresetParityTest, AllSolversAgree) {
  auto preset = FindModelPreset(GetParam());
  ASSERT_TRUE(preset.ok());
  auto model = MakeModel(*preset, /*scale_multiplier=*/0.12);
  ASSERT_TRUE(model.ok());
  // Keep the instance small enough for the naive solver.
  ASSERT_LE(static_cast<int64_t>(model->num_users()) * model->num_items(),
            int64_t{40000000});

  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model->users),
                                ConstRowBlock(model->items)).ok());
  TopKResult expected;
  ASSERT_TRUE(reference.TopKAll(10, &expected).ok());

  for (const std::string& name : AvailableSolvers()) {
    if (name == "naive") continue;  // covered by solvers_test; slow here
    auto solver = CreateSolver(name);
    ASSERT_TRUE(solver.ok());
    ASSERT_TRUE((*solver)->Prepare(ConstRowBlock(model->users),
                                   ConstRowBlock(model->items)).ok());
    TopKResult got;
    ASSERT_TRUE((*solver)->TopKAll(10, &got).ok());
    ExpectSameTopKScores(got, expected, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Presets, PresetParityTest,
                         ::testing::Values("netflix-nomad-10",
                                           "netflix-bpr-25", "r2-nomad-10",
                                           "kdd-nomad-25", "glove-twitter-50"));

TEST(IntegrationTest, OptimusOnPresets) {
  for (const char* id : {"netflix-nomad-10", "r2-nomad-10"}) {
    auto preset = FindModelPreset(id);
    ASSERT_TRUE(preset.ok());
    auto model = MakeModel(*preset, 0.1);
    ASSERT_TRUE(model.ok());

    BmmSolver bmm;
    MaximusSolver maximus;
    OptimusOptions options;
    options.l2_cache_bytes = 32 * 1024;
    Optimus optimus(options);
    TopKResult out;
    OptimusReport report;
    ASSERT_TRUE(optimus
                    .Run(ConstRowBlock(model->users),
                         ConstRowBlock(model->items), 5, {&bmm, &maximus},
                         &out, &report)
                    .ok());
    BmmSolver reference;
    ASSERT_TRUE(reference.Prepare(ConstRowBlock(model->users),
                                  ConstRowBlock(model->items)).ok());
    TopKResult expected;
    ASSERT_TRUE(reference.TopKAll(5, &expected).ok());
    ExpectSameTopKScores(out, expected, 1e-6);
  }
}

TEST(IntegrationTest, ApproxClusterRecall) {
  const MFModel model = MakeTestModel(400, 200, 10, 71, /*norm_sigma=*/0.5,
                                      /*dispersion=*/0.2);
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult exact;
  ASSERT_TRUE(reference.TopKAll(10, &exact).ok());

  // Many clusters on tightly clustered users -> high recall.
  ApproxClusterOptions many;
  many.num_clusters = 64;
  ApproxClusterTopK approx_many(many);
  ASSERT_TRUE(approx_many.Prepare(ConstRowBlock(model.users),
                                  ConstRowBlock(model.items)).ok());
  TopKResult approx_result;
  ASSERT_TRUE(approx_many.TopKAll(10, &approx_result).ok());
  const double recall_many = MeanRecallAtK(approx_result, exact);
  EXPECT_GT(recall_many, 0.5);
  EXPECT_LE(recall_many, 1.0);

  // One cluster -> everyone gets the same list -> lower recall.
  ApproxClusterOptions one;
  one.num_clusters = 1;
  ApproxClusterTopK approx_one(one);
  ASSERT_TRUE(approx_one.Prepare(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items)).ok());
  TopKResult approx_one_result;
  ASSERT_TRUE(approx_one.TopKAll(10, &approx_one_result).ok());
  const double recall_one = MeanRecallAtK(approx_one_result, exact);
  EXPECT_LE(recall_one, recall_many + 1e-9);
  // Exact results have recall exactly 1 against themselves.
  EXPECT_DOUBLE_EQ(MeanRecallAtK(exact, exact), 1.0);
}

// Section III-E claim, scaled: clustering only 10% of users and assigning
// the rest barely changes the end-to-end result (and stays exact).
TEST(IntegrationTest, DynamicUsersStayExact) {
  const MFModel model = MakeTestModel(500, 300, 10, 73, 0.6, 0.3);
  // Prepare MAXIMUS on the first 10% of users only.
  MaximusSolver maximus;
  ASSERT_TRUE(maximus.Prepare(ConstRowBlock(model.users, 0, 50),
                              ConstRowBlock(model.items)).ok());
  // Serve the remaining 90% as dynamic users; verify against brute force.
  BmmSolver reference;
  ASSERT_TRUE(reference.Prepare(ConstRowBlock(model.users),
                                ConstRowBlock(model.items)).ok());
  TopKResult expected;
  ASSERT_TRUE(reference.TopKAll(5, &expected).ok());
  std::vector<TopKEntry> row(5);
  for (Index u = 50; u < 500; ++u) {
    ASSERT_TRUE(
        maximus.QueryDynamicUser(model.users.Row(u), 5, row.data()).ok());
    for (Index e = 0; e < 5; ++e) {
      EXPECT_NEAR(row[static_cast<std::size_t>(e)].score,
                  expected.Row(u)[e].score, 1e-7)
          << "user " << u << " entry " << e;
    }
  }
}

TEST(IntegrationTest, TrainSaveLoadServe) {
  // Train a small MF model, persist it, reload it, and serve with OPTIMUS.
  const Index users = 120;
  const Index items = 90;
  const auto ratings =
      GenerateSyntheticRatings(users, items, 8000, 4, 0.05, 79);
  MFTrainConfig config;
  config.num_factors = 6;
  config.epochs = 12;
  auto trained = TrainMF(ratings, users, items, config);
  ASSERT_TRUE(trained.ok());

  const std::string upath = ::testing::TempDir() + "/users.bin";
  const std::string ipath = ::testing::TempDir() + "/items.bin";
  ASSERT_TRUE(SaveMatrixBinary(trained->users, upath).ok());
  ASSERT_TRUE(SaveMatrixBinary(trained->items, ipath).ok());
  auto loaded_users = LoadMatrixBinary(upath);
  auto loaded_items = LoadMatrixBinary(ipath);
  ASSERT_TRUE(loaded_users.ok());
  ASSERT_TRUE(loaded_items.ok());

  BmmSolver bmm;
  MaximusSolver maximus;
  OptimusOptions options;
  options.l2_cache_bytes = 8 * 1024;
  Optimus optimus(options);
  TopKResult out;
  ASSERT_TRUE(optimus
                  .Run(ConstRowBlock(*loaded_users),
                       ConstRowBlock(*loaded_items), 3, {&bmm, &maximus},
                       &out)
                  .ok());
  MFModel loaded;
  loaded.users = std::move(*loaded_users);
  loaded.items = std::move(*loaded_items);
  ExpectValidTopK(out, AllUsers(users), loaded, 1e-7);
  std::remove(upath.c_str());
  std::remove(ipath.c_str());
}

// The regime claim behind the whole paper, verified end-to-end: on the
// R2-like preset the index prunes most work; on the Netflix-like preset it
// cannot.
TEST(IntegrationTest, PruningRegimesMatchPresets) {
  auto netflix = FindModelPreset("netflix-nomad-50");
  auto r2 = FindModelPreset("r2-nomad-50");
  ASSERT_TRUE(netflix.ok());
  ASSERT_TRUE(r2.ok());
  auto netflix_model = MakeModel(*netflix, 0.08);
  auto r2_model = MakeModel(*r2, 0.08);
  ASSERT_TRUE(netflix_model.ok());
  ASSERT_TRUE(r2_model.ok());

  MaximusSolver m_netflix;
  MaximusSolver m_r2;
  ASSERT_TRUE(m_netflix.Prepare(ConstRowBlock(netflix_model->users),
                                ConstRowBlock(netflix_model->items)).ok());
  ASSERT_TRUE(m_r2.Prepare(ConstRowBlock(r2_model->users),
                           ConstRowBlock(r2_model->items)).ok());
  TopKResult out;
  ASSERT_TRUE(m_netflix.TopKAll(1, &out).ok());
  const double netflix_fraction = m_netflix.mean_items_visited() /
                                  netflix_model->num_items();
  ASSERT_TRUE(m_r2.TopKAll(1, &out).ok());
  const double r2_fraction = m_r2.mean_items_visited() / r2_model->num_items();
  // R2-like data must be dramatically more prunable.
  EXPECT_LT(r2_fraction, 0.5 * netflix_fraction);
}

}  // namespace
}  // namespace mips
