#include "core/serving.h"

namespace mips {

StatusOr<std::unique_ptr<ServingSession>> ServingSession::Open(
    const ConstRowBlock& users, const ConstRowBlock& items,
    const ServingOptions& options) {
  if (options.strategies.size() < 2) {
    return Status::InvalidArgument(
        "serving session needs at least two candidate strategies");
  }
  EngineOptions engine_options;
  engine_options.k = options.k;
  engine_options.solvers = options.strategies;
  engine_options.optimus = options.optimus;
  // Sessions are fixed-k by contract; a diverging k would indicate a
  // caller bug, so serve it with the opening winner instead of paying
  // for a re-decision.  Batching sessions re-open that door along the
  // *shape* axis: coalesced mini-batches land at the session's k but at
  // varying row counts, and the index-vs-BMM winner flips with the row
  // count, so the engine keys decisions on (k, batch-size bucket).
  engine_options.redecide_on_new_k = options.batching;
  engine_options.batch_shape_decisions = options.batching;

  std::unique_ptr<ServingSession> session(new ServingSession());
  session->k_ = options.k;
  if (options.num_shards > 1) {
    ShardedEngineOptions sharded_options;
    sharded_options.num_shards = options.num_shards;
    sharded_options.sharding = options.sharding;
    sharded_options.engine = engine_options;
    auto sharded = ShardedMipsEngine::Open(users, items, sharded_options);
    MIPS_RETURN_IF_ERROR(sharded.status());
    session->sharded_engine_ = std::move(*sharded);
    // Freeze the '|'-joined per-shard winner summary: with re-decisions
    // off and no forcing, per-shard strategies cannot change.
    for (int s = 0; s < session->sharded_engine_->num_shards(); ++s) {
      if (session->sharded_engine_->shard_engine(s) == nullptr) continue;
      if (session->sharded_strategy_.empty()) session->first_active_shard_ = s;
      if (!session->sharded_strategy_.empty()) {
        session->sharded_strategy_ += '|';
      }
      session->sharded_strategy_ += session->sharded_engine_->shard_strategy(s);
    }
    if (options.batching) {
      auto batching = BatchingEngine::Create(session->sharded_engine_.get(),
                                             options.batching_options);
      MIPS_RETURN_IF_ERROR(batching.status());
      session->batching_ = std::move(*batching);
    }
    return session;
  }
  auto engine = MipsEngine::Open(users, items, engine_options);
  MIPS_RETURN_IF_ERROR(engine.status());
  session->engine_ = std::move(*engine);
  if (options.batching) {
    auto batching = BatchingEngine::Create(session->engine_.get(),
                                           options.batching_options);
    MIPS_RETURN_IF_ERROR(batching.status());
    session->batching_ = std::move(*batching);
  }
  return session;
}

Status ServingSession::ServeBatch(std::span<const Index> user_ids,
                                  TopKResult* out) {
  if (engine_ != nullptr) {
    return engine_->TopK(k_, user_ids, out);
  }
  return sharded_engine_->TopK(k_, user_ids, out);
}

Status ServingSession::ServeNewUser(const Real* user_vector,
                                    TopKEntry* out_row) {
  if (batching_ != nullptr) {
    return batching_->TopKNewUser(user_vector, k_, out_row);
  }
  if (engine_ != nullptr) {
    return engine_->TopKNewUser(user_vector, k_, out_row);
  }
  return sharded_engine_->TopKNewUser(user_vector, k_, out_row);
}

ServingSession::Stats ServingSession::stats() const {
  Stats stats;
  if (engine_ != nullptr) {
    const MipsEngine::Stats& engine_stats = engine_->stats();
    stats.batches_served = engine_stats.batches_served;
    stats.users_served = engine_stats.users_served;
    stats.new_users_served = engine_stats.new_users_served;
    stats.serve_seconds = engine_stats.serve_seconds;
    return stats;
  }
  // counters(), not stats(): the full per-shard snapshot (vector +
  // strings + per-shard locks) is diagnostics-priced; the engine's
  // atomics are the source of truth either way.
  const ShardedMipsEngine::Counters counters = sharded_engine_->counters();
  stats.batches_served = counters.batches_served;
  stats.users_served = counters.users_served;
  stats.new_users_served = counters.new_users_served;
  stats.serve_seconds = counters.serve_seconds;
  return stats;
}

std::future<Status> ServingSession::SubmitNewUser(const Real* user_vector,
                                                  TopKEntry* out_row,
                                                  double deadline_ms) {
  if (batching_ == nullptr) {
    std::promise<Status> promise;
    std::future<Status> future = promise.get_future();
    promise.set_value(Status::FailedPrecondition(
        "SubmitNewUser requires a batching session "
        "(ServingOptions::batching)"));
    return future;
  }
  return batching_->SubmitNewUser(user_vector, k_, out_row, deadline_ms);
}

}  // namespace mips
