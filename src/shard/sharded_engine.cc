#include "shard/sharded_engine.h"

#include <numeric>
#include <thread>

#include "common/timer.h"
#include "topk/merge.h"

namespace mips {

StatusOr<std::unique_ptr<ShardedMipsEngine>> ShardedMipsEngine::Open(
    const ConstRowBlock& users, const ConstRowBlock& items,
    const ShardedEngineOptions& options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1, got " +
                                   std::to_string(options.num_shards));
  }
  if (options.threads < 0) {
    return Status::InvalidArgument("threads must be >= 0, got " +
                                   std::to_string(options.threads));
  }

  std::unique_ptr<ShardedMipsEngine> engine(new ShardedMipsEngine());
  engine->users_ = users;
  engine->options_ = options;
  auto partition = ItemPartition::Create(
      items, options.num_shards, options.sharding, options.growth_block);
  MIPS_RETURN_IF_ERROR(partition.status());
  engine->partition_ = std::move(*partition);
  if (options.threads > 0) {
    engine->pool_ = std::make_unique<ThreadPool>(options.threads);
  }

  // Per-shard engines share the sharded engine's pool; each shard's Open
  // runs on its own thread (NOT on the pool — Open waits on the pool for
  // its candidate builds, and waiting from inside a pool task deadlocks),
  // so N shards' candidate indexes build concurrently.
  EngineOptions shard_options = options.engine;
  shard_options.threads = 0;
  shard_options.shared_pool = engine->pool_.get();
  const int num_shards = engine->partition_.num_shards();
  engine->engines_.resize(static_cast<std::size_t>(num_shards));
  std::vector<StatusOr<std::unique_ptr<MipsEngine>>> opened;
  std::vector<int> targets;
  for (int s = 0; s < num_shards; ++s) {
    if (engine->partition_.shard(s).num_items() > 0) targets.push_back(s);
  }
  opened.reserve(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    opened.push_back(Status::Internal("shard open did not run"));
  }
  {
    std::vector<std::thread> openers;
    openers.reserve(targets.size());
    for (std::size_t i = 0; i < targets.size(); ++i) {
      openers.emplace_back([&, i]() {
        opened[i] = MipsEngine::Open(
            users, engine->partition_.shard(targets[i]).items, shard_options);
      });
    }
    for (auto& t : openers) t.join();
  }
  for (std::size_t i = 0; i < targets.size(); ++i) {
    MIPS_RETURN_IF_ERROR(opened[i].status());
    engine->engines_[static_cast<std::size_t>(targets[i])] =
        std::move(*opened[i]);
    engine->active_shards_.push_back(targets[i]);
  }
  return engine;
}

Status ShardedMipsEngine::ScatterGather(Index k,
                                        std::span<const Index> user_ids,
                                        TopKResult* out) {
  // Scatter: each shard answers exact top-k over its own items with
  // local ids...
  std::vector<TopKResult> partials(active_shards_.size());
  for (std::size_t i = 0; i < active_shards_.size(); ++i) {
    const int s = active_shards_[i];
    MIPS_RETURN_IF_ERROR(engines_[static_cast<std::size_t>(s)]->TopK(
        k, user_ids, &partials[i]));
    // ...gather: remap to global ids through the partition...
    const ItemShard& shard = partition_.shard(s);
    TopKResult& partial = partials[i];
    for (Index q = 0; q < partial.num_queries(); ++q) {
      TopKEntry* row = partial.Row(q);
      for (Index e = 0; e < k; ++e) {
        if (row[e].item >= 0) row[e].item = shard.ToGlobal(row[e].item);
      }
    }
  }
  // ...and merge: k-way merge per query row under the BetterEntry order,
  // reproducing the unsharded row exactly.
  std::vector<const TopKResult*> results;
  results.reserve(partials.size());
  for (const TopKResult& partial : partials) results.push_back(&partial);
  MergeTopKResults(results, k, out);
  return Status::OK();
}

Status ShardedMipsEngine::TopK(Index k, std::span<const Index> user_ids,
                               TopKResult* out) {
  if (k <= 0) {
    return Status::InvalidArgument("k must be positive, got " +
                                   std::to_string(k));
  }
  for (const Index id : user_ids) {
    if (id < 0 || id >= users_.rows()) {
      return Status::OutOfRange(
          "user id out of range: " + std::to_string(id) + " (engine has " +
          std::to_string(users_.rows()) + " users)");
    }
  }
  WallTimer timer;
  MIPS_RETURN_IF_ERROR(ScatterGather(k, user_ids, out));
  {
    MutexLock lock(stats_mu_);
    counters_.serve_seconds += timer.Seconds();
    counters_.batches_served += 1;
    counters_.users_served += static_cast<int64_t>(user_ids.size());
  }
  return Status::OK();
}

Status ShardedMipsEngine::TopKAll(Index k, TopKResult* out) {
  std::vector<Index> ids(static_cast<std::size_t>(users_.rows()));
  std::iota(ids.begin(), ids.end(), 0);
  return TopK(k, ids, out);
}

Status ShardedMipsEngine::TopKNewUser(const Real* user_vector, Index k,
                                      TopKEntry* out_row) {
  TopKResult one;
  MIPS_RETURN_IF_ERROR(TopKNewUsers(user_vector, 1, k, &one));
  const TopKEntry* row = one.Row(0);
  for (Index e = 0; e < k; ++e) out_row[e] = row[e];
  return Status::OK();
}

Status ShardedMipsEngine::TopKNewUsers(const Real* user_vectors,
                                       Index num_rows, Index k,
                                       TopKResult* out) {
  if (k <= 0) {
    return Status::InvalidArgument("k must be positive, got " +
                                   std::to_string(k));
  }
  if (user_vectors == nullptr) {
    return Status::InvalidArgument("user_vectors must not be null");
  }
  if (num_rows <= 0) {
    return Status::InvalidArgument("num_rows must be positive, got " +
                                   std::to_string(num_rows));
  }
  WallTimer timer;
  // Scatter the whole batch: each shard answers all rows at once (its own
  // strategy decision is keyed on this batch shape), then remap and merge
  // exactly as the known-user path does.
  std::vector<TopKResult> partials(active_shards_.size());
  for (std::size_t i = 0; i < active_shards_.size(); ++i) {
    const int s = active_shards_[i];
    MIPS_RETURN_IF_ERROR(engines_[static_cast<std::size_t>(s)]->TopKNewUsers(
        user_vectors, num_rows, k, &partials[i]));
    const ItemShard& shard = partition_.shard(s);
    TopKResult& partial = partials[i];
    for (Index q = 0; q < partial.num_queries(); ++q) {
      TopKEntry* row = partial.Row(q);
      for (Index e = 0; e < k; ++e) {
        if (row[e].item >= 0) row[e].item = shard.ToGlobal(row[e].item);
      }
    }
  }
  std::vector<const TopKResult*> results;
  results.reserve(partials.size());
  for (const TopKResult& partial : partials) results.push_back(&partial);
  MergeTopKResults(results, k, out);
  {
    MutexLock lock(stats_mu_);
    counters_.serve_seconds += timer.Seconds();
    counters_.new_users_served += num_rows;
  }
  return Status::OK();
}

Status ShardedMipsEngine::ForceStrategy(const std::string& name_or_spec) {
  // All shards were opened from the same candidate list, so the first
  // shard's answer decides for everyone: either the name matches a
  // candidate everywhere or nowhere.
  for (const int s : active_shards_) {
    MIPS_RETURN_IF_ERROR(
        engines_[static_cast<std::size_t>(s)]->ForceStrategy(name_or_spec));
  }
  return Status::OK();
}

Status ShardedMipsEngine::ForceStrategyOnShard(
    int shard, const std::string& name_or_spec) {
  if (shard < 0 || shard >= num_shards()) {
    return Status::OutOfRange("shard index out of range: " +
                              std::to_string(shard) + " (engine has " +
                              std::to_string(num_shards()) + " shards)");
  }
  MipsEngine* target = engines_[static_cast<std::size_t>(shard)].get();
  if (target == nullptr) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(shard) + " is empty (no engine)");
  }
  return target->ForceStrategy(name_or_spec);
}

void ShardedMipsEngine::ClearForcedStrategy() {
  for (const int s : active_shards_) {
    engines_[static_cast<std::size_t>(s)]->ClearForcedStrategy();
  }
}

int64_t ShardedMipsEngine::InvalidateDecisions() {
  int64_t retired = 0;
  for (const int s : active_shards_) {
    retired += engines_[static_cast<std::size_t>(s)]->InvalidateDecisions();
  }
  return retired;
}

std::string ShardedMipsEngine::shard_strategy(int s) const {
  const MipsEngine* engine = shard_engine(s);
  return engine == nullptr ? std::string() : engine->strategy();
}

ShardedMipsEngine::Counters ShardedMipsEngine::counters() const {
  MutexLock lock(stats_mu_);
  return counters_;
}

ShardedMipsEngine::Stats ShardedMipsEngine::stats() const {
  Stats snapshot;
  {
    MutexLock lock(stats_mu_);
    snapshot.batches_served = counters_.batches_served;
    snapshot.users_served = counters_.users_served;
    snapshot.new_users_served = counters_.new_users_served;
    snapshot.serve_seconds = counters_.serve_seconds;
  }
  snapshot.shards.resize(static_cast<std::size_t>(num_shards()));
  for (int s = 0; s < num_shards(); ++s) {
    ShardSnapshot& shard = snapshot.shards[static_cast<std::size_t>(s)];
    shard.num_items = partition_.shard(s).num_items();
    const MipsEngine* engine = engines_[static_cast<std::size_t>(s)].get();
    if (engine == nullptr) continue;
    shard.strategy = engine->strategy();
    shard.opening_choice = engine->decision_report().chosen;
    shard.stats = engine->stats();
    snapshot.redecisions += shard.stats.redecisions;
    snapshot.decision_cache_hits += shard.stats.decision_cache_hits;
    snapshot.decision_cache_misses += shard.stats.decision_cache_misses;
    snapshot.decision_cache_evictions += shard.stats.decision_cache_evictions;
    snapshot.decision_cache_expirations +=
        shard.stats.decision_cache_expirations;
    snapshot.decision_cache_invalidations +=
        shard.stats.decision_cache_invalidations;
    snapshot.gemm_kernel = shard.stats.gemm_kernel;  // process-global
  }
  return snapshot;
}

}  // namespace mips
