// Inverted (per-dimension) index over a CSR item catalog, and the exact
// top-K query walk the sindi solver family runs against it.
//
// The index is the CSC transpose of the catalog: for each factor
// dimension d, a posting list of (item, value) pairs over the items whose
// coordinate d is nonzero.  Two posting orders are supported:
//
//  - kAbsDescending ("postings=abs"): each list sorted by |value|
//    descending (item id ascending among exact-|value| ties).  The query
//    walk processes dimensions in decreasing |q_d| * MaxAbs_d
//    contribution-cap order and maintains suffix sums of the caps, which
//    yields per-item admission upper bounds that tighten as lists are
//    consumed — the SINDI-style value-ordered traversal (arXiv:2509.08395)
//    with threshold-based cutoffs against the running heap minimum.
//
//  - kItemAscending ("postings=id"): each list in item-id order; the walk
//    is a term-at-a-time accumulation over all touched items with no
//    pruning.  This is the classic sparse-TAAT baseline and the ablation
//    partner for the abs-ordered walk.
//
// Exactness: BOTH modes return bit-for-bit the scores the dense blocked
// GEMM produces, under the library-wide (score desc, item asc) tie order.
//  - abs mode admits items by upper bound only; every admitted item is
//    rescored exactly with CsrMatrix::GemmEquivalentDot (the per-K-panel
//    fma fold of gemm.h).  Bounds are inflated by a relative slack before
//    the strictly-below pruning test so floating-point rounding in the
//    bound arithmetic can never make a "bound" dip below a score it is
//    supposed to dominate.  Items never admitted have provably lower
//    scores than the heap minimum — except exact zero-overlap items
//    (score +0.0), which a final sweep pushes whenever the heap is not
//    full or its minimum is <= 0 (if the minimum is > 0 the sweep is
//    provably unnecessary; see SparseTopKQuery).
//  - id mode accumulates in column-ascending order with the same
//    per-K-panel panel boundaries as the dense kernel (panel accumulators
//    are flushed into the running totals at each kGemmKPanel boundary),
//    so every touched item's score is the identical fma chain.
//
// Thread safety: InvertedIndex is immutable after Build(); queries run
// concurrently with per-thread SparseQueryScratch instances.

#ifndef MIPS_SPARSE_INVERTED_INDEX_H_
#define MIPS_SPARSE_INVERTED_INDEX_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/dcheck.h"
#include "sparse/csr_matrix.h"
#include "topk/result.h"
#include "topk/topk_heap.h"

namespace mips {

/// One posting: an item id and its coordinate value in the list's
/// dimension.
struct Posting {
  Index item = 0;
  Real value = 0;
};

/// Sort order of each dimension's posting list.
enum class PostingOrder {
  kAbsDescending,  // |value| desc, item asc among ties ("abs")
  kItemAscending,  // item id asc ("id")
};

/// Immutable per-dimension posting lists over a CsrMatrix.
class InvertedIndex {
 public:
  InvertedIndex() = default;

  /// Builds the index for `csr` (which must outlive any queries only in
  /// the sense that the *catalog object* is still needed for exact
  /// rescoring — the index itself copies what it needs).
  static InvertedIndex Build(const CsrMatrix& csr, PostingOrder order);

  PostingOrder order() const { return order_; }
  Index dims() const { return dims_; }
  Index items() const { return items_; }

  std::span<const Posting> Dim(Index d) const {
    MIPS_DCHECK_GE(d, 0);
    MIPS_DCHECK_LT(d, dims_);
    const auto begin =
        static_cast<std::size_t>(dim_ptr_[static_cast<std::size_t>(d)]);
    const auto end =
        static_cast<std::size_t>(dim_ptr_[static_cast<std::size_t>(d) + 1]);
    return {postings_.data() + begin, end - begin};
  }

  /// max |value| over Dim(d); 0 for an empty list.
  Real MaxAbs(Index d) const {
    MIPS_DCHECK_GE(d, 0);
    MIPS_DCHECK_LT(d, dims_);
    return max_abs_[static_cast<std::size_t>(d)];
  }

 private:
  void DcheckInvariants() const;

  PostingOrder order_ = PostingOrder::kAbsDescending;
  Index dims_ = 0;
  Index items_ = 0;
  std::vector<int64_t> dim_ptr_;   // size dims_ + 1
  std::vector<Posting> postings_;  // concatenated lists
  std::vector<Real> max_abs_;      // size dims_
};

/// Per-thread reusable state for SparseTopKQuery.  Reuse across queries
/// on the same thread; never share across threads.
struct SparseQueryScratch {
  /// Sizes the scratch for a catalog of `items` rows; idempotent.
  void Reserve(Index items) {
    if (stamp.size() < static_cast<std::size_t>(items)) {
      stamp.resize(static_cast<std::size_t>(items), 0);
      panel_acc.resize(static_cast<std::size_t>(items), 0);
      score_acc.resize(static_cast<std::size_t>(items), 0);
    }
  }

  uint64_t epoch = 0;                 // bumped per query; stamp[i]==epoch
  std::vector<uint64_t> stamp;        //   marks item i touched this query
  std::vector<Index> touched;         // items stamped this query
  std::vector<Real> panel_acc;        // id mode: current-panel partials
  std::vector<Real> score_acc;        // id mode: folded panel totals
  std::vector<std::pair<Real, Index>> dims;  // abs mode: (cap, dim) sorted
  std::vector<Real> suffix;           // abs mode: suffix sums of caps
};

/// Counters a query walk accumulates (summed across queries by sindi).
struct SparseQueryStats {
  int64_t postings_visited = 0;  // postings actually examined
  int64_t items_rescored = 0;    // exact rescores (abs mode)
  int64_t lists_pruned = 0;      // lists cut short or skipped by bounds
};

/// Exact top-K of `q` (length csr.cols()) against the indexed catalog.
/// Writes out_row[0..k) sorted (score desc, item asc), padded with
/// {-1, -inf} sentinels when fewer than k items exist.  When `item_ids`
/// is non-empty it maps local catalog rows to global item ids
/// (item_ids[local]); ids must be ascending so the global tie order is
/// preserved.  `stats` may be null.
void SparseTopKQuery(const CsrMatrix& csr, const InvertedIndex& index,
                     const Real* q, Index k,
                     std::span<const Index> item_ids,
                     SparseQueryScratch* scratch, TopKHeap* heap,
                     TopKEntry* out_row, SparseQueryStats* stats);

}  // namespace mips

#endif  // MIPS_SPARSE_INVERTED_INDEX_H_
