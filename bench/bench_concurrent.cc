// Closed-loop multi-client serving throughput (Figure 6 extended).
//
// The paper's multi-core result parallelizes *inside* one query batch
// (user partitioning); a serving deployment additionally faces many
// independent clients hitting the same MipsEngine.  This harness measures
// that: T client threads issue mixed-k TopK mini-batches back-to-back
// (closed loop) against one shared engine for a fixed wall-clock window,
// and the table reports per-T throughput (QPS over requests and users)
// and request latency percentiles (p50/p99).  The mixed k values
// deliberately exercise the engine's per-k decision cache — the first
// request at each new k pays the (shared-mutex-serialized) OPTIMUS
// re-decision; the steady state is lock-shared reads.
//
//   bench_concurrent --clients=8 --seconds=2 --k=1,5,10 --threads=0
//
// --threads sizes the engine's internal pool (parallelism inside one
// batch); --clients scales the number of concurrent callers.  On a
// 1-core host expect flat QPS with rising latency as clients grow; on
// real multi-core hardware QPS should scale until cores saturate.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <functional>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "core/engine.h"
#include "shard/sharded_engine.h"

using namespace mips;
using namespace mips::bench;

namespace {

std::vector<std::string> SplitSpecs(const std::string& csv) {
  std::vector<std::string> specs;
  std::string current;
  for (const char c : csv) {
    if (c == ',') {
      if (!current.empty()) specs.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) specs.push_back(current);
  return specs;
}

double Percentile(std::vector<double>* sorted_seconds, double p) {
  if (sorted_seconds->empty()) return 0;
  const std::size_t idx = std::min(
      sorted_seconds->size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted_seconds->size())));
  return (*sorted_seconds)[idx];
}

/// One closed-loop client sweep (1, 2, 4, ... max_clients) against any
/// engine, expressed as a serve callback so the unsharded and sharded
/// engines run through identical harness code.
void RunSweep(const std::string& label, int max_clients, int batch_size,
              double seconds, const std::vector<Index>& ks, Index num_users,
              const std::function<void(Index, std::span<const Index>,
                                       TopKResult*)>& serve,
              const std::function<int64_t()>& redecisions) {
  std::printf("-- %s --\n", label.c_str());
  TablePrinter table({"Clients", "Requests", "QPS", "Users/s", "p50", "p99",
                      "Redecisions"});
  for (int clients = 1; clients <= max_clients; clients *= 2) {
    const int64_t redecisions_before = redecisions();
    std::atomic<bool> stop{false};
    std::vector<std::vector<double>> latencies(
        static_cast<std::size_t>(clients));
    std::vector<std::thread> workers;
    for (int t = 0; t < clients; ++t) {
      workers.emplace_back([&, t]() {
        std::vector<double>& mine = latencies[static_cast<std::size_t>(t)];
        std::vector<Index> batch(static_cast<std::size_t>(batch_size));
        TopKResult out;
        Index cursor = static_cast<Index>(t) * 97 % num_users;
        std::size_t request = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const Index k = ks[request++ % ks.size()];
          for (auto& id : batch) {
            cursor = (cursor + 1) % num_users;
            id = cursor;
          }
          WallTimer timer;
          serve(k, batch, &out);
          mine.push_back(timer.Seconds());
        }
      });
    }
    WallTimer window;
    while (window.Seconds() < seconds) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto& w : workers) w.join();
    const double elapsed = window.Seconds();

    std::vector<double> all;
    for (const auto& lane : latencies) {
      all.insert(all.end(), lane.begin(), lane.end());
    }
    std::sort(all.begin(), all.end());
    const double qps = static_cast<double>(all.size()) / elapsed;
    table.AddRow({FmtInt(clients), FmtInt(static_cast<int64_t>(all.size())),
                  Fmt(qps, 1), Fmt(qps * batch_size, 1),
                  FormatSeconds(Percentile(&all, 0.50)),
                  FormatSeconds(Percentile(&all, 0.99)),
                  FmtInt(redecisions() - redecisions_before)});
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags;
  BenchConfig config;
  int32_t max_clients = 8;
  int32_t batch_size = 16;
  int32_t shards = 0;
  std::string shard_strategy = "contiguous";
  double seconds = 2.0;
  std::string solvers = "bmm,maximus";
  flags.Int32("clients", &max_clients,
              "max concurrent client threads (sweeps 1,2,4,... up to this)");
  flags.Int32("batch", &batch_size, "users per TopK request");
  flags.Int32("shards", &shards,
              "also sweep a ShardedMipsEngine with this many item shards "
              "(0 = unsharded only) and report the overhead vs the "
              "unsharded baseline");
  flags.String("shard_strategy", &shard_strategy,
               "item placement for --shards: contiguous or hash");
  flags.Double("seconds", &seconds, "measurement window per client count");
  flags.String("solvers", &solvers, "engine candidate specs, comma-separated");
  config.ks = "1,5,10";
  ParseBenchFlags(argc, argv, &flags, &config);

  auto preset = FindModelPreset("netflix-nomad-50");
  preset.status().CheckOK();
  const MFModel model = MakeBenchModel(*preset, config);
  const std::vector<Index> ks = ParseKList(config.ks);

  EngineOptions options;
  options.k = ks.empty() ? 10 : ks.front();
  options.solvers = SplitSpecs(solvers);
  options.threads = config.threads > 1 ? config.threads : 0;
  auto engine = MipsEngine::Open(ConstRowBlock(model.users),
                                 ConstRowBlock(model.items), options);
  engine.status().CheckOK();

  std::printf(
      "== Concurrent serving: %s (%d users, %d items), batch=%d, "
      "ks=%s, engine threads=%d ==\n",
      preset->display_name.c_str(), model.num_users(), model.num_items(),
      batch_size, config.ks.c_str(), options.threads);
  std::printf("host hardware threads: %u\n\n",
              std::thread::hardware_concurrency());

  const Index num_users = model.num_users();
  RunSweep("unsharded baseline", max_clients, batch_size, seconds, ks,
           num_users,
           [&](Index k, std::span<const Index> batch, TopKResult* out) {
             (*engine)->TopK(k, batch, out).CheckOK();
           },
           [&]() { return (*engine)->stats().redecisions; });

  if (shards > 1) {
    auto strategy = ParseShardingStrategy(shard_strategy);
    strategy.status().CheckOK();
    ShardedEngineOptions sharded_options;
    sharded_options.num_shards = shards;
    sharded_options.sharding = *strategy;
    sharded_options.engine = options;
    sharded_options.threads = options.threads;
    auto sharded = ShardedMipsEngine::Open(ConstRowBlock(model.users),
                                           ConstRowBlock(model.items),
                                           sharded_options);
    sharded.status().CheckOK();
    RunSweep("sharded: " + std::to_string(shards) + " " + shard_strategy +
                 " item shards",
             max_clients, batch_size, seconds, ks, num_users,
             [&](Index k, std::span<const Index> batch, TopKResult* out) {
               (*sharded)->TopK(k, batch, out).CheckOK();
             },
             [&]() { return (*sharded)->stats().redecisions; });

    // Per-shard decision summary: the paper's point is that the winner is
    // data-dependent, so heterogeneous shards should show heterogeneous
    // choices — and the re-decision column shows what the mixed-k stream
    // cost each shard.
    TablePrinter shard_table({"Shard", "Items", "Opening choice", "Serving",
                              "Redecisions", "Cache hit/miss"});
    const ShardedMipsEngine::Stats stats = (*sharded)->stats();
    for (int s = 0; s < (*sharded)->num_shards(); ++s) {
      const auto& shard = stats.shards[static_cast<std::size_t>(s)];
      shard_table.AddRow(
          {FmtInt(s), FmtInt(shard.num_items),
           shard.opening_choice.empty() ? "-" : shard.opening_choice,
           shard.strategy.empty() ? "-" : shard.strategy,
           FmtInt(shard.stats.redecisions),
           FmtInt(shard.stats.decision_cache_hits) + "/" +
               FmtInt(shard.stats.decision_cache_misses)});
    }
    shard_table.Print();
    std::printf("\n");
  }

  std::printf(
      "Closed loop: each client issues its next request as soon as the "
      "previous one returns.  Re-decisions only appear in the first "
      "window (the per-k cache is shared and persistent).\n");
  return 0;
}
