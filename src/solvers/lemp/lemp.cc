#include "solvers/lemp/lemp.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>

#include "common/timer.h"
#include "linalg/blas.h"
#include "solvers/registry.h"
#include "topk/topk_heap.h"

namespace mips {

using lemp::Bucket;
using lemp::BucketAlgorithm;

namespace {

// Per-user scratch for incremental pruning: the user's suffix norms at the
// shared checkpoint dimensions.
struct UserScratch {
  std::vector<Real> suffix_norms;

  void Compute(const Real* user, Index f,
               const std::vector<Index>& checkpoints) {
    suffix_norms.resize(checkpoints.size());
    for (std::size_t c = 0; c < checkpoints.size(); ++c) {
      const Index start = checkpoints[c];
      suffix_norms[c] = Nrm2(user + start, f - start);
    }
  }
};

}  // namespace

Status LempSolver::Prepare(const ConstRowBlock& users,
                           const ConstRowBlock& items) {
  if (users.cols() != items.cols()) {
    return Status::InvalidArgument("user/item factor dimensions differ");
  }
  if (items.rows() <= 0) {
    return Status::InvalidArgument("item set is empty");
  }
  users_ = users;
  items_ = items;
  prepared_users_ = users.rows();

  WallTimer timer;
  sorted_ = lemp::SortItemsByNorm(items, options_.num_checkpoints);
  Index bucket_size = options_.bucket_size;
  if (bucket_size <= 0) {
    bucket_size = std::clamp<Index>(items.rows() / 64, 64, 1024);
  }
  buckets_ = lemp::MakeBuckets(sorted_, bucket_size);
  {
    MutexLock lock(calibration_mu_);
    bucket_algorithms_.assign(buckets_.size(),
                              BucketAlgorithm::kIncremental);
    if (options_.forced_algorithm >= 0) {
      const auto forced =
          static_cast<BucketAlgorithm>(options_.forced_algorithm);
      bucket_algorithms_.assign(buckets_.size(), forced);
    }
    algorithms_by_k_.clear();
  }
  stage_timer_.Add("construction", timer.Seconds());
  return Status::OK();
}

Index LempSolver::QueryOneUser(
    const Real* user, Real user_norm, Index k,
    const std::vector<BucketAlgorithm>& algorithms,
    TopKEntry* out_row) const {
  const Index f = items_.cols();
  const Index ncp = static_cast<Index>(sorted_.checkpoint_dims.size());
  TopKHeap heap(k);
  UserScratch scratch;
  scratch.Compute(user, f, sorted_.checkpoint_dims);

  Index scanned = 0;
  for (std::size_t bi = 0; bi < buckets_.size(); ++bi) {
    const Bucket& bucket = buckets_[bi];
    const Real min_h = heap.MinScore();
    // Bucket-level termination: every item here (and in all later buckets)
    // has norm <= max_norm, so u.i <= ||u|| * max_norm.  All pruning in
    // this walk is strict (`< min_h`, not `<=`): a bound equal to the
    // heap minimum can belong to a score that ties it, and the tied item
    // must reach Push so the lower item id wins deterministically
    // (topk_heap.h).
    if (heap.full() && bucket.max_norm * user_norm < min_h) break;

    const BucketAlgorithm algorithm = algorithms[bi];
    // Coordinate-range prune: may skip this bucket entirely (but not the
    // later ones — the coordinate bound is not monotone across buckets).
    if (algorithm == BucketAlgorithm::kCoord && heap.full() &&
        CoordBucketBound(user, bucket, f) < min_h) {
      continue;
    }
    for (Index pos = bucket.begin; pos < bucket.end; ++pos) {
      const Real norm = sorted_.norms[static_cast<std::size_t>(pos)];
      if (algorithm != BucketAlgorithm::kNaive && heap.full() &&
          norm * user_norm < heap.MinScore()) {
        // Items are norm-sorted inside the bucket too: nothing later in
        // this bucket can qualify.
        break;
      }
      ++scanned;
      const Real* v = sorted_.vectors.Row(pos);
      const Index id = sorted_.ids[static_cast<std::size_t>(pos)];

      if (algorithm == BucketAlgorithm::kIncremental && heap.full()) {
        // Partial inner products with Cauchy-Schwarz tail bounds.
        Real partial = 0;
        Index start = 0;
        bool pruned = false;
        for (Index c = 0; c < ncp; ++c) {
          const Index dim = sorted_.checkpoint_dims[static_cast<std::size_t>(c)];
          partial += Dot(user + start, v + start, dim - start);
          start = dim;
          const Real tail =
              scratch.suffix_norms[static_cast<std::size_t>(c)] *
              sorted_.suffix_norms[static_cast<std::size_t>(pos) * ncp + c];
          if (partial + tail < heap.MinScore()) {
            pruned = true;
            break;
          }
        }
        if (pruned) continue;
        partial += Dot(user + start, v + start, f - start);
        heap.Push(id, partial);
      } else {
        heap.Push(id, Dot(user, v, f));
      }
    }
  }
  heap.ExtractDescending(out_row);
  return scanned;
}

void LempSolver::Calibrate(Index k, std::span<const Index> user_ids) {
  calibration_mu_.AssertHeld();
  const std::size_t num_buckets = buckets_.size();
  // Accumulated cost and trial count per (bucket, algorithm).
  std::vector<double> cost(num_buckets * lemp::kNumBucketAlgorithms, 0.0);
  std::vector<int> trials(num_buckets * lemp::kNumBucketAlgorithms, 0);

  const Index sample = std::min<Index>(options_.calibration_users,
                                       static_cast<Index>(user_ids.size()));
  if (sample <= 0) return;
  const Index f = items_.cols();
  const Index ncp = static_cast<Index>(sorted_.checkpoint_dims.size());
  std::vector<TopKEntry> row(static_cast<std::size_t>(k));

  for (Index s = 0; s < sample; ++s) {
    // Spread calibration users across the query batch.
    const std::size_t idx =
        static_cast<std::size_t>(s) * user_ids.size() /
        static_cast<std::size_t>(sample);
    const Real* user = users_.Row(user_ids[idx]);
    const Real user_norm = Nrm2(user, f);
    UserScratch scratch;
    scratch.Compute(user, f, sorted_.checkpoint_dims);

    for (int a = 0; a < lemp::kNumBucketAlgorithms; ++a) {
      const auto algorithm = static_cast<BucketAlgorithm>(a);
      TopKHeap heap(k);
      for (std::size_t bi = 0; bi < num_buckets; ++bi) {
        const Bucket& bucket = buckets_[bi];
        if (heap.full() && bucket.max_norm * user_norm < heap.MinScore()) {
          break;
        }
        WallTimer bucket_timer;
        if (algorithm == BucketAlgorithm::kCoord && heap.full() &&
            CoordBucketBound(user, bucket, f) < heap.MinScore()) {
          const std::size_t skip_slot =
              bi * lemp::kNumBucketAlgorithms + static_cast<std::size_t>(a);
          // mips-tidy: allow(float-accumulation): cost-model timing, not a
          // score.
          cost[skip_slot] += bucket_timer.Seconds();
          ++trials[skip_slot];
          continue;
        }
        for (Index pos = bucket.begin; pos < bucket.end; ++pos) {
          const Real norm = sorted_.norms[static_cast<std::size_t>(pos)];
          if (algorithm != BucketAlgorithm::kNaive && heap.full() &&
              norm * user_norm < heap.MinScore()) {
            break;
          }
          const Real* v = sorted_.vectors.Row(pos);
          const Index id = sorted_.ids[static_cast<std::size_t>(pos)];
          if (algorithm == BucketAlgorithm::kIncremental && heap.full()) {
            Real partial = 0;
            Index start = 0;
            bool pruned = false;
            for (Index c = 0; c < ncp; ++c) {
              const Index dim =
                  sorted_.checkpoint_dims[static_cast<std::size_t>(c)];
              partial += Dot(user + start, v + start, dim - start);
              start = dim;
              const Real tail =
                  scratch.suffix_norms[static_cast<std::size_t>(c)] *
                  sorted_.suffix_norms[static_cast<std::size_t>(pos) * ncp + c];
              if (partial + tail < heap.MinScore()) {
                pruned = true;
                break;
              }
            }
            if (pruned) continue;
            partial += Dot(user + start, v + start, f - start);
            heap.Push(id, partial);
          } else {
            heap.Push(id, Dot(user, v, f));
          }
        }
        const std::size_t slot = bi * lemp::kNumBucketAlgorithms +
                                 static_cast<std::size_t>(a);
        // mips-tidy: allow(float-accumulation): cost-model timing, not a
        // score.
        cost[slot] += bucket_timer.Seconds();
        ++trials[slot];
      }
      heap.ExtractDescending(row.data());
    }
  }

  for (std::size_t bi = 0; bi < num_buckets; ++bi) {
    int best = static_cast<int>(BucketAlgorithm::kIncremental);
    double best_cost = std::numeric_limits<double>::max();
    for (int a = 0; a < lemp::kNumBucketAlgorithms; ++a) {
      const std::size_t slot =
          bi * lemp::kNumBucketAlgorithms + static_cast<std::size_t>(a);
      if (trials[slot] == 0) continue;
      const double mean = cost[slot] / trials[slot];
      if (mean < best_cost) {
        best_cost = mean;
        best = a;
      }
    }
    bucket_algorithms_[bi] = static_cast<BucketAlgorithm>(best);
  }
}

Status LempSolver::TopKForUsers(Index k, std::span<const Index> user_ids,
                                TopKResult* out) {
  if (k <= 0) return Status::InvalidArgument("k must be positive");
  if (buckets_.empty()) {
    return Status::FailedPrecondition("Prepare was not called");
  }
  const Index q = static_cast<Index>(user_ids.size());
  *out = TopKResult(q, k);
  if (q == 0) return Status::OK();

  // Calibrate each distinct k once (under the lock, cached like the
  // engine's per-k winner), then query on a snapshot so a concurrent
  // batch at another k cannot mutate the table mid-scan.  Every bucket
  // algorithm is exact; calibration only tunes pruning cost.
  std::vector<BucketAlgorithm> algorithms;
  if (options_.forced_algorithm >= 0) {
    // Fixed at Prepare, never mutated afterwards — but snapshot under the
    // lock anyway so the analysis (and any future mutation) stays honest.
    MutexLock lock(calibration_mu_);
    algorithms = bucket_algorithms_;
  } else {
    MutexLock lock(calibration_mu_);
    auto it = algorithms_by_k_.find(k);
    if (it == algorithms_by_k_.end()) {
      WallTimer timer;
      Calibrate(k, user_ids);
      it = algorithms_by_k_.emplace(k, bucket_algorithms_).first;
      stage_timer_.Add("calibration", timer.Seconds());
    }
    algorithms = it->second;
  }

  const Index f = items_.cols();
  std::atomic<int64_t> total_scanned{0};
  ParallelFor(pool_, q, [&](int64_t begin, int64_t end, int /*chunk*/) {
    int64_t scanned = 0;
    for (int64_t r = begin; r < end; ++r) {
      const Real* user = users_.Row(user_ids[static_cast<std::size_t>(r)]);
      const Real user_norm = Nrm2(user, f);
      scanned += QueryOneUser(user, user_norm, k, algorithms,
                              out->Row(static_cast<Index>(r)));
    }
    total_scanned.fetch_add(scanned, std::memory_order_relaxed);
  });
  last_scan_fraction_.store(
      static_cast<double>(total_scanned.load()) /
          (static_cast<double>(q) * static_cast<double>(items_.rows())),
      std::memory_order_relaxed);
  return Status::OK();
}

namespace {

const SolverRegistrar kLempRegistrar(
    SolverSchema("lemp", "LEMP-LI bucketed point-query index (SIGMOD'15)")
        .Int("bucket_size", LempOptions{}.bucket_size,
             "items per bucket (0 = auto: n/64 in [64, 1024])")
        .Int("calibration_users", LempOptions{}.calibration_users,
             "users used to calibrate the per-bucket algorithm choice")
        .Int("num_checkpoints", LempOptions{}.num_checkpoints,
             "incremental-pruning checkpoints per vector")
        .Int("forced_algorithm", LempOptions{}.forced_algorithm,
             "fix every bucket to one algorithm 0..3 (-1 = adaptive)"),
    [](const ParamMap& params) -> StatusOr<std::unique_ptr<MipsSolver>> {
      LempOptions options;
      auto bucket_size = params.GetIndexChecked("bucket_size");
      MIPS_RETURN_IF_ERROR(bucket_size.status());
      auto calibration_users = params.GetIndexChecked("calibration_users");
      MIPS_RETURN_IF_ERROR(calibration_users.status());
      auto num_checkpoints = params.GetIndexChecked("num_checkpoints");
      MIPS_RETURN_IF_ERROR(num_checkpoints.status());
      auto forced = params.GetIndexChecked("forced_algorithm");
      MIPS_RETURN_IF_ERROR(forced.status());
      if (*bucket_size < 0) {
        return Status::InvalidArgument("bucket_size must be >= 0");
      }
      if (*calibration_users <= 0) {
        return Status::InvalidArgument("calibration_users must be positive");
      }
      if (*num_checkpoints <= 0) {
        return Status::InvalidArgument("num_checkpoints must be positive");
      }
      if (*forced < -1 || *forced > 3) {
        return Status::InvalidArgument("forced_algorithm must be in [-1, 3]");
      }
      options.bucket_size = *bucket_size;
      options.calibration_users = *calibration_users;
      options.num_checkpoints = *num_checkpoints;
      options.forced_algorithm = static_cast<int>(*forced);
      return std::unique_ptr<MipsSolver>(new LempSolver(options));
    });

}  // namespace

}  // namespace mips
