// Figure 8: runtime breakdown of MAXIMUS (K=1) with and without item
// blocking, on Netflix-NOMAD f=50 and R2-NOMAD f=50.
//
// Stages: clustering, index construction, cost estimation (an
// OPTIMUS-style sample measurement, as in the paper's pipeline), and
// index traversal.  The lesion: disabling the shared first-B GEMM slows
// traversal (paper: item blocking is worth 2.4x on Netflix and 1.4x on
// R2, larger where w-bar is larger).

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/maximus.h"
#include "stats/sampling.h"

using namespace mips;
using namespace mips::bench;

int main(int argc, char** argv) {
  FlagSet flags;
  BenchConfig config;
  ParseBenchFlags(argc, argv, &flags, &config);

  std::printf("== Figure 8: MAXIMUS runtime breakdown, K=1, with vs "
              "without item blocking ==\n");
  std::printf(
      "(three blocking configurations: none; auto B=|I|/8; the paper's "
      "B=4096, which at bench scale covers the whole catalog)\n");
  TablePrinter table({"Model", "Item blocking", "Clustering",
                      "Construction", "Cost estimation", "Traversal",
                      "Total", "w-bar"});
  struct BlockConfig {
    const char* label;
    Index block_size;
  };
  const BlockConfig block_configs[] = {
      {"without", 0}, {"auto (|I|/8)", -1}, {"B=4096 (paper)", 4096}};
  for (const char* id : {"netflix-nomad-50", "r2-nomad-50"}) {
    auto preset = FindModelPreset(id);
    preset.status().CheckOK();
    const MFModel model = MakeBenchModel(*preset, config);
    double traversal_without_blocking = 0;
    for (const BlockConfig& bc : block_configs) {
      MaximusOptions options;
      options.block_size = bc.block_size;
      MaximusSolver maximus(options);
      maximus.Prepare(ConstRowBlock(model.users), ConstRowBlock(model.items))
          .CheckOK();

      // Cost estimation stage: OPTIMUS's sample measurement.
      Rng rng(99);
      const Index sample_size = OptimizerSampleSize(
          model.num_users(), 0.005, model.num_factors(),
          kDefaultL2CacheBytes);
      const auto sample =
          SampleWithoutReplacement(model.num_users(), sample_size, &rng);
      WallTimer est_timer;
      TopKResult sample_result;
      maximus.TopKForUsers(1, sample, &sample_result).CheckOK();
      const double cost_estimation = est_timer.Seconds();

      maximus.mutable_stage_timer()->Add("traversal", 0);  // reset baseline
      const double traversal_before =
          maximus.stage_timer().Get("traversal");
      TopKResult result;
      maximus.TopKAll(1, &result).CheckOK();
      const double traversal =
          maximus.stage_timer().Get("traversal") - traversal_before;
      const double clustering = maximus.stage_timer().Get("clustering");
      const double construction = maximus.stage_timer().Get("construction");
      const double total =
          clustering + construction + cost_estimation + traversal;
      if (bc.block_size == 0) traversal_without_blocking = traversal;
      table.AddRow({preset->id, bc.label, FormatSeconds(clustering),
                    FormatSeconds(construction),
                    FormatSeconds(cost_estimation),
                    FormatSeconds(traversal), FormatSeconds(total),
                    Fmt(maximus.mean_items_visited(), 1)});
      if (bc.block_size != 0 && traversal_without_blocking > 0) {
        std::printf("  %s [%s]: item blocking speeds traversal %.2fx\n",
                    preset->id.c_str(), bc.label,
                    traversal_without_blocking / traversal);
      }
    }
  }
  table.Print();
  std::printf(
      "\nPaper shape: clustering + construction + cost estimation are a "
      "small overhead (~1.8%%) next to traversal; item blocking is worth "
      "2.4x (Netflix) and 1.4x (R2) on traversal, larger where w-bar is "
      "larger.\n");
  return 0;
}
