// MipsEngine: the one configuration-driven entry point for exact MIPS
// serving.
//
// Callers hand Open() a model plus candidate strategies *as specs*
// ("bmm", "maximus:clusters=64", ...).  The engine builds every
// candidate via the solver registry (concurrently, on the engine's pool,
// when threads > 0), runs the OPTIMUS decision once at the configured k,
// owns the solvers and the optional thread pool, and then serves:
//
//   * TopK(k, user_ids)   — mini-batches of known users at any k.  When
//     a call's k diverges from the k the decision was made at, the
//     engine re-runs the (cheap, sampling-based) decision for the new k
//     and caches the winner — or falls back to the opening winner when
//     re-deciding is disabled.  Either way every answer stays exact.
//   * TopKAll(k)          — every prepared user.
//   * TopKNewUser(...)    — a vector outside the prepared user matrix
//     (Section III-E): MAXIMUS's dynamic walk when a MAXIMUS-family
//     strategy is chosen, a dense scoring row otherwise.
//
// ForceStrategy() overrides the optimizer by candidate name (benches,
// lesion studies, operator escape hatch); stats() snapshots cumulative
// serving counters.  ServingSession (serving.h) is a thin compatibility
// wrapper over this class.
//
// Thread safety (the contract the multi-client server relies on):
//
//   * After Open() returns, TopK / TopKAll / TopKNewUser / stats() /
//     strategy() may be called from any number of threads concurrently.
//     Candidate indexes are read-only at query time; the per-k decision
//     cache is guarded by a shared mutex so the hot path (k already
//     decided) takes only a shared lock, and the exclusive lock is held
//     only while a brand-new k runs Optimus::DecidePrepared.  Concurrent
//     callers of other, already-cached ks briefly queue behind that
//     decision; exactness is never affected.
//   * stats() counters are atomics; the returned snapshot is internally
//     consistent per field (not across fields).
//   * ForceStrategy / ClearForcedStrategy are safe to call concurrently
//     with queries; in-flight batches may finish on the previous
//     strategy.
//   * The `threads` pool is shared by all candidates and by concurrent
//     callers: a batch's ParallelFor chunks simply interleave with other
//     batches' chunks in the pool's FIFO queue.

#ifndef MIPS_CORE_ENGINE_H_
#define MIPS_CORE_ENGINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/thread_pool.h"
#include "core/optimus.h"
#include "solvers/solver.h"

namespace mips {

/// Configuration for MipsEngine::Open.
struct EngineOptions {
  /// The k the opening OPTIMUS decision is made at (queries may use any
  /// k; see redecide_on_new_k).
  Index k = 10;
  /// Candidate strategies as registry specs.  One candidate skips the
  /// decision; two or more run OPTIMUS.
  std::vector<std::string> solvers = {"bmm", "maximus"};
  /// Optimizer knobs for the opening (and any per-k re-) decision.
  OptimusOptions optimus;
  /// Worker threads owned by the engine and shared by all candidates
  /// (0 = single-threaded).  Also used to build the candidate indexes
  /// concurrently during Open.  Ignored when `shared_pool` is set.
  int threads = 0;
  /// Optional externally owned worker pool.  When non-null the engine
  /// uses it instead of creating its own (and `threads` is ignored); the
  /// pool must outlive the engine.  ShardedMipsEngine uses this to run N
  /// shard engines on one pool.  The caller must not Open() the engine
  /// from inside a task running ON this pool — Open waits on the pool for
  /// the candidate builds, and ThreadPool::Wait from inside a task
  /// deadlocks.
  ThreadPool* shared_pool = nullptr;
  /// When a query's k has no cached decision: true re-runs the OPTIMUS
  /// decision at that k (and caches it), false reuses the opening
  /// winner.  Exactness is unaffected either way.
  bool redecide_on_new_k = true;
  /// Upper bound on cached per-k decisions (the opening k is pinned and
  /// counts toward the bound; it is never evicted).  When a new k's
  /// decision would exceed the bound, the least-recently-used cached k is
  /// evicted — a later query at that k re-decides.  Bounds the memory an
  /// adversarial stream of distinct ks can pin.  0 = unbounded.
  int decision_cache_capacity = 64;
  /// Time-to-live for cached per-k winners, in seconds (0 = never
  /// expire).  Eviction only bounds memory; a TTL bounds STALENESS: a
  /// winner measured under one load profile (or one installed GEMM
  /// kernel) expires, and the next query at that k re-runs the sampling
  /// decision — including the pinned opening k.  Expirations are counted
  /// in Stats::decision_cache_expirations.  Ignored when re-deciding is
  /// impossible (redecide_on_new_k = false, or a single candidate):
  /// expiring an entry that cannot be re-measured would serve nothing.
  double decision_ttl_seconds = 0;
  /// When true, per-k decisions additionally key on the REALIZED BATCH
  /// SHAPE: a query's row count is bucketed to the next power of two
  /// (capped at batch_shape_max_bucket) and each (k, bucket) pair gets
  /// its own sampling decision, measured on a bucket-sized batch
  /// (OptimusOptions::fixed_sample_users).  This is the paper's central
  /// trade-off surfacing at serve time: a 64-row coalesced batch
  /// amortizes the GEMM's item-panel sweep and may pick BMM where each
  /// singleton picked an index probe.  Off by default — the population-
  /// scale per-k decision (bucket 0) then serves every shape, preserving
  /// the pre-existing behavior.  Decisions share the LRU/TTL cache
  /// machinery either way.  BatchingEngine (serve/batching_engine.h)
  /// turns this on for its backend.
  bool batch_shape_decisions = false;
  /// Largest shape bucket when batch_shape_decisions is set; batches
  /// beyond it share the cap bucket's decision (amortization has
  /// saturated by then).
  Index batch_shape_max_bucket = 128;
  /// Expected batch row counts to PRE-decide at Open(), so the first
  /// request at each shape finds a cached winner instead of paying the
  /// sampling decision inline.  Each entry is bucketed exactly like a
  /// live query (ShapeBucket; duplicates and same-bucket shapes collapse)
  /// and decided at the opening k.  Entries must be positive.  Only
  /// meaningful with batch_shape_decisions = true and >= 2 candidates —
  /// otherwise every shape already shares the opening decision and the
  /// list warms nothing.
  std::vector<Index> warm_batch_shapes;
  /// Which GEMM micro-kernel the engine's BMM/index GEMMs dispatch to
  /// (linalg/simd_dispatch.h).  "auto" keeps the process-wide choice
  /// (MIPS_GEMM_KERNEL env override, else the startup micro-probe);
  /// "avx512" / "avx2" / "portable" force-install that kernel
  /// process-wide before the opening decision (Open fails if it is not
  /// supported on this machine).  The installed kernel is recorded in
  /// stats() and in the OPTIMUS decision report.
  std::string gemm_kernel = "auto";
};

/// A long-lived exact-MIPS serving engine over one (users, items) model.
/// The model views must outlive the engine.  See the file comment for the
/// thread-safety contract.
class MipsEngine {
 public:
  /// Builds the candidates from their specs, prepares them (in parallel
  /// on the engine pool when threads > 0), and runs the opening OPTIMUS
  /// decision.  Spec errors (unknown solver, unknown or ill-typed
  /// parameter) are returned verbatim from the registry.
  static StatusOr<std::unique_ptr<MipsEngine>> Open(
      const ConstRowBlock& users, const ConstRowBlock& items,
      const EngineOptions& options = {});

  /// Exact top-K for a mini-batch of known users (ids into the engine's
  /// user matrix), served by the strategy decided for this k.  Safe for
  /// concurrent callers.
  Status TopK(Index k, std::span<const Index> user_ids, TopKResult* out);

  /// Exact top-K for every prepared user.
  Status TopKAll(Index k, TopKResult* out);

  /// Exact top-K for a user vector that is NOT in the prepared user
  /// matrix.  `out_row` must hold k entries.  Serves through the same
  /// code path as a 1-row TopKNewUsers call, so a singleton answer is
  /// bit-for-bit the row a coalesced batch would produce for the same
  /// vector.
  Status TopKNewUser(const Real* user_vector, Index k, TopKEntry* out_row);

  /// Exact top-K for a mini-batch of `num_rows` new-user vectors, stored
  /// contiguously row-major (num_rows x num_factors) at `user_vectors`.
  /// This is the serve-side coalescing path (serve/batching_engine.h):
  /// when the serving strategy is MAXIMUS-family each row runs the exact
  /// dynamic-user walk; otherwise the whole batch is scored with one
  /// blocked GEMM against the item matrix — the batching win the paper's
  /// Clipper-style setting exists to exploit.  Row r of *out depends only
  /// on row r of the input (the GEMM accumulates each score over the
  /// factor axis in a fixed order independent of the batch's row count),
  /// so results are bit-for-bit identical whether a vector is served
  /// alone or coalesced into any batch.  Safe for concurrent callers.
  Status TopKNewUsers(const Real* user_vectors, Index num_rows, Index k,
                      TopKResult* out);

  /// Logically drops every cached per-(k, shape) decision by bumping the
  /// engine's decision generation — the same lazily-checked idiom as the
  /// GEMM kernel install epoch: entries created under an older
  /// generation report expired at their next lookup and the query
  /// re-runs the sampling decision (counted as a cache invalidation).
  /// For an embedding catalog layer this is the "statistics changed"
  /// hook: after an item-set swap, winners measured on the old catalog
  /// no longer describe reality.  Returns the number of decisions cached
  /// at the bump (how many were retired).  When re-deciding is
  /// impossible (single candidate, or redecide_on_new_k = false) the
  /// bump is a no-op on serving — the opening winner keeps serving, and
  /// exactness is unaffected either way.  Safe to call concurrently with
  /// queries.
  int64_t InvalidateDecisions() EXCLUDES(decision_mu_);

  /// Overrides the optimizer: every subsequent query uses the candidate
  /// whose solver name — or, for tuned variants of the same solver,
  /// whose exact opening spec — matches `name_or_spec`.  NotFound if no
  /// candidate matches.
  Status ForceStrategy(const std::string& name_or_spec);
  /// Returns to decision-driven strategy selection.
  void ClearForcedStrategy();

  /// Name of the strategy serving the engine's decision k right now
  /// (the forced strategy when one is set).
  const std::string& strategy() const EXCLUDES(decision_mu_);
  /// The opening decision trace (empty estimates for single-candidate
  /// engines).
  const OptimusReport& decision_report() const { return report_; }
  /// Solver names of the candidates, in spec order.  Two tuned variants
  /// of the same solver share a name; candidate_specs() disambiguates.
  const std::vector<std::string>& candidate_names() const { return names_; }
  /// The opening specs, verbatim, in order.
  const std::vector<std::string>& candidate_specs() const { return specs_; }

  Index num_users() const { return users_.rows(); }
  Index num_items() const { return items_.rows(); }
  Index num_factors() const { return items_.cols(); }

  /// Snapshot of the cumulative serving statistics.  Each field is
  /// individually consistent; fields may be mutually skewed by in-flight
  /// requests.
  struct Stats {
    int64_t batches_served = 0;
    int64_t users_served = 0;
    int64_t new_users_served = 0;
    /// Per-k OPTIMUS re-decisions triggered by diverging query ks.
    int64_t redecisions = 0;
    double serve_seconds = 0;
    double redecision_seconds = 0;
    /// Decision-cache accounting: a hit is a query whose k already has a
    /// cached winner; a miss triggers either a re-decision or the
    /// opening-winner fallback (redecide_on_new_k = false).  Evictions
    /// count cached ks dropped to keep the cache within
    /// decision_cache_capacity; size is the current entry count.
    int64_t decision_cache_hits = 0;
    int64_t decision_cache_misses = 0;
    int64_t decision_cache_evictions = 0;
    /// Cached winners dropped because they outlived decision_ttl_seconds
    /// (each one also counts as a miss for the query that found it
    /// stale).
    int64_t decision_cache_expirations = 0;
    /// Cached winners dropped because the GEMM kernel was re-installed
    /// after they were measured (ForceGemmKernel mid-flight): the
    /// throughput regime they were decided under no longer exists, so
    /// the next query re-decides immediately instead of waiting out the
    /// TTL.  Each one also counts as a miss.
    int64_t decision_cache_invalidations = 0;
    int64_t decision_cache_size = 0;
    /// The GEMM micro-kernel installed at snapshot time ("portable",
    /// "avx2", "avx512") — the throughput regime every wall-clock
    /// decision in this engine was measured under.
    std::string gemm_kernel;
    /// Item-catalog representation of the strategy serving the engine's
    /// decision k right now ("dense", "sparse", "hybrid") — the forced
    /// strategy's when one is set, else the opening winner's.
    std::string representation;
  };
  Stats stats() const EXCLUDES(decision_mu_);

 private:
  MipsEngine() = default;

  /// Decision-cache key: the query k plus the realized-batch-shape
  /// bucket (0 = the population-scale decision; a power of two when
  /// batch_shape_decisions keys on shape).
  using DecisionKey = std::pair<Index, Index>;
  /// The pinned opening decision's key.
  DecisionKey OpeningKey() const { return {options_.k, 0}; }
  /// Shape bucket for a batch of `rows` (0 when shape-keying is off).
  Index ShapeBucket(Index rows) const;

  /// Index into solvers_ of the strategy serving a k/batch-shape pair
  /// (decides and caches on a miss).  Lock-free-ish hot path: shared
  /// lock on a cache hit, exclusive lock (serializing the decision) on a
  /// miss, a TTL-expired winner, or a kernel-epoch-invalidated winner.
  StatusOr<std::size_t> StrategyFor(Index k, Index batch_rows)
      EXCLUDES(decision_mu_);

  struct CachedDecision;
  /// Whether `entry` outlived decision_ttl_seconds or was measured under
  /// a GEMM kernel that has since been re-installed (always false when
  /// re-deciding is impossible).  `entry` points into winner_by_k_, so
  /// the caller must hold decision_mu_ at least shared.
  bool DecisionExpired(const CachedDecision& entry) const
      REQUIRES_SHARED(decision_mu_);

  /// Dense-scoring fallback for new-user batches: one blocked GEMM over
  /// the items per score-block chunk + per-row top-K.  Used for every
  /// non-MAXIMUS-family strategy (a new user has no row in any prepared
  /// index's user-side structures).
  Status DenseScoreNewUsers(const Real* user_vectors, Index num_rows,
                            Index k, TopKResult* out);

  /// The pool serving this engine: the shared external pool when one was
  /// injected, else the engine-owned pool (null = single-threaded).
  ThreadPool* pool() const {
    return options_.shared_pool != nullptr ? options_.shared_pool
                                           : owned_pool_.get();
  }

  ConstRowBlock users_;
  ConstRowBlock items_;
  EngineOptions options_;
  std::unique_ptr<ThreadPool> owned_pool_;
  std::vector<std::unique_ptr<MipsSolver>> solvers_;
  std::vector<std::string> names_;  // solver names, parallel to solvers_
  std::vector<std::string> specs_;  // opening specs, parallel to solvers_

  /// One cached per-(k, shape) decision.  `last_used` is a recency stamp
  /// from decision_clock_, bumped with a relaxed store on every
  /// (shared-locked) hit; eviction drops the smallest stamp.  `created`
  /// is the TTL anchor and `kernel_epoch` the GEMM-kernel install count
  /// the decision was measured under: both written once at insertion
  /// (under the exclusive lock, so they are safely published to
  /// shared-lock readers).  Stored in a node-based map so the atomic
  /// member never needs to move.
  struct CachedDecision {
    CachedDecision(std::size_t w, std::chrono::steady_clock::time_point t,
                   uint64_t epoch, uint64_t gen)
        : winner(w), created(t), kernel_epoch(epoch), generation(gen) {}
    std::size_t winner;
    std::chrono::steady_clock::time_point created;
    uint64_t kernel_epoch;
    /// decision_generation_ at insertion; a mismatch at lookup means
    /// InvalidateDecisions ran since and the entry is stale.
    uint64_t generation;
    mutable std::atomic<uint64_t> last_used{0};
  };

  /// Guards winner_by_k_.  Shared: cache lookups.  Exclusive: inserting
  /// the winner for a new key (held across DecidePrepared so one decision
  /// runs at a time and latecomers reuse its result) and evicting.
  mutable SharedMutex decision_mu_;
  std::map<DecisionKey, CachedDecision> winner_by_k_
      GUARDED_BY(decision_mu_);
  std::atomic<uint64_t> decision_clock_{0};
  /// Bumped by InvalidateDecisions; stamped into every cached decision.
  std::atomic<uint64_t> decision_generation_{0};

  /// Caches `winner` for `key`, evicting the least-recently-used
  /// non-pinned entries while the cache exceeds capacity.
  void InsertDecision(DecisionKey key, std::size_t winner)
      REQUIRES(decision_mu_);

  std::atomic<std::size_t> forced_{kNoForcedStrategy};
  OptimusReport report_;

  struct AtomicStats {
    std::atomic<int64_t> batches_served{0};
    std::atomic<int64_t> users_served{0};
    std::atomic<int64_t> new_users_served{0};
    std::atomic<int64_t> redecisions{0};
    std::atomic<double> serve_seconds{0};
    std::atomic<double> redecision_seconds{0};
    std::atomic<int64_t> decision_cache_hits{0};
    std::atomic<int64_t> decision_cache_misses{0};
    std::atomic<int64_t> decision_cache_evictions{0};
    std::atomic<int64_t> decision_cache_expirations{0};
    std::atomic<int64_t> decision_cache_invalidations{0};
  };
  AtomicStats stats_;

  static constexpr std::size_t kNoForcedStrategy =
      static_cast<std::size_t>(-1);
};

}  // namespace mips

#endif  // MIPS_CORE_ENGINE_H_
