// mips-heap-bound-strictness
//
// Rationale:
//
//   TopKHeap accepts candidates with `score >= MinScore()` so that Push
//   can apply the library-wide deterministic tie order (BetterEntry:
//   higher score, then lower item id).  Index walks must therefore prune
//   on `bound < MinScore()` — STRICTLY below the heap minimum — because
//   an upper bound exactly equal to the minimum can still cover a score
//   that TIES it, and the tied item must reach Push for the id
//   tie-break.  A `<=` prune drops such an item and makes the reported
//   ids depend on visit order: this was the PR 3 sharded-tie bug, found
//   in review then; found at compile time now.
//
// What the check flags — a non-strict comparison that places the heap
// minimum on the "allowed to be equal and still prune" side:
//
//     bound <= heap.MinScore()          // flagged
//     heap.MinScore() >= bound          // flagged (same predicate)
//     bound <= min_h                    // flagged when
//                                       //   Real min_h = heap.MinScore();
//
// What it deliberately does not flag:
//
//     bound < heap.MinScore()           // the correct strict prune
//     score >= heap.MinScore()          // the inclusive ACCEPT test —
//                                       // this is WouldAccept's own body
//     heap.MinScore() <= 0              // threshold guards against a
//                                       // compile-time constant: a
//                                       // constant is not a per-item
//                                       // bound, and skipping pruning is
//                                       // always exact
//
// Known limitation (reviewed, accepted): a strict accept test written as
// `bound > MinScore()` is the same bug in accept-direction clothing but
// is textually identical to the valid reversed prune, so it cannot be
// distinguished syntactically.  Use WouldAccept for accept tests.
//
// Suppression: `// mips-tidy: allow(heap-bound-strictness): <reason>`.

#ifndef MIPS_TOOLS_MIPS_TIDY_HEAP_BOUND_STRICTNESS_CHECK_H_
#define MIPS_TOOLS_MIPS_TIDY_HEAP_BOUND_STRICTNESS_CHECK_H_

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::mips {

class HeapBoundStrictnessCheck : public ClangTidyCheck {
 public:
  using ClangTidyCheck::ClangTidyCheck;
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

}  // namespace clang::tidy::mips

#endif  // MIPS_TOOLS_MIPS_TIDY_HEAP_BOUND_STRICTNESS_CHECK_H_
