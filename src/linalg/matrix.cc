#include "linalg/matrix.h"

#include <algorithm>
#include <cstring>

namespace mips {

namespace {
constexpr std::size_t kAlignment = 64;  // one cache line / one zmm register
}  // namespace

void Matrix::Resize(Index rows, Index cols) {
  assert(rows >= 0 && cols >= 0);
  Free();
  rows_ = rows;
  cols_ = cols;
  const std::size_t n = size();
  if (n == 0) return;
  data_ = static_cast<Real*>(
      ::operator new[](n * sizeof(Real), std::align_val_t(kAlignment)));
  std::memset(data_, 0, n * sizeof(Real));
}

void Matrix::Fill(Real value) { std::fill_n(data_, size(), value); }

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  // Simple cache-blocked transpose; good enough for the f x f and n x f
  // matrices we transpose (FEXIPRO basis application, test helpers).
  constexpr Index kBlock = 32;
  for (Index rb = 0; rb < rows_; rb += kBlock) {
    const Index rmax = std::min(rows_, rb + kBlock);
    for (Index cb = 0; cb < cols_; cb += kBlock) {
      const Index cmax = std::min(cols_, cb + kBlock);
      for (Index r = rb; r < rmax; ++r) {
        const Real* src = Row(r);
        for (Index c = cb; c < cmax; ++c) {
          t(c, r) = src[c];
        }
      }
    }
  }
  return t;
}

Matrix Matrix::RowSlice(Index begin, Index end) const {
  assert(begin >= 0 && begin <= end && end <= rows_);
  Matrix out(end - begin, cols_);
  if (!out.empty()) {
    std::memcpy(out.data(), Row(begin),
                out.size() * sizeof(Real));
  }
  return out;
}

bool Matrix::operator==(const Matrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  return std::equal(data_, data_ + size(), other.data_);
}

void Matrix::Free() {
  if (data_ != nullptr) {
    ::operator delete[](data_, std::align_val_t(kAlignment));
    data_ = nullptr;
  }
  rows_ = 0;
  cols_ = 0;
}

void Matrix::CopyFrom(const Matrix& other) {
  rows_ = other.rows_;
  cols_ = other.cols_;
  const std::size_t n = size();
  if (n == 0) {
    data_ = nullptr;
    return;
  }
  data_ = static_cast<Real*>(
      ::operator new[](n * sizeof(Real), std::align_val_t(kAlignment)));
  std::memcpy(data_, other.data_, n * sizeof(Real));
}

}  // namespace mips
