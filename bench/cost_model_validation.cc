// Validation of the Section IV-A offline analytical BMM cost model.
//
// The paper: "we found that this analytical model was accurate within 5%
// of the measured dense matrix multiply runtimes ... However, this model
// does not extend to the top-K selection stage ... the min-heap traversal
// time is non-negligible — at least 9.5% for our largest models.
// Therefore, we report results for OPTIMUS only using the online sampling
// approach."  This bench reproduces both halves: per model, the predicted
// GEMM time vs the measured GEMM time (should be close), and vs the full
// BMM pipeline including top-K (should underpredict, more so for K=50).

#include <cstdio>

#include "bench_util.h"
#include "common/timer.h"
#include "core/cost_model.h"
#include "linalg/gemm.h"
#include "solvers/bmm.h"

using namespace mips;
using namespace mips::bench;

int main(int argc, char** argv) {
  FlagSet flags;
  BenchConfig config;
  ParseBenchFlags(argc, argv, &flags, &config);

  auto cost_model = BmmCostModel::Calibrate();
  cost_model.status().CheckOK();
  std::printf("== Offline BMM cost model (Section IV-A) ==\n");
  std::printf("calibrated sustained rate: %.2f GFLOP/s\n\n",
              cost_model->sustained_flops() / 1e9);

  TablePrinter table({"Model", "predicted GEMM", "measured GEMM",
                      "GEMM error", "BMM total (K=1)", "BMM total (K=50)",
                      "heap share (K=50)"});
  for (const char* id :
       {"netflix-nomad-50", "r2-nomad-50", "kdd-ref-51",
        "glove-twitter-100"}) {
    auto preset = FindModelPreset(id);
    preset.status().CheckOK();
    const MFModel model = MakeBenchModel(*preset, config);
    const Index m = model.num_users();
    const Index n = model.num_items();
    const Index f = model.num_factors();

    // Measured GEMM alone (users x items scoring), batched like BMM.
    Matrix scores(std::min<Index>(m, 2048), n);
    WallTimer timer;
    for (Index begin = 0; begin < m; begin += scores.rows()) {
      const Index b = std::min<Index>(scores.rows(), m - begin);
      GemmNT(model.users.Row(begin), b, model.items.data(), n, f, 1, 0,
             scores.data(), n);
    }
    const double measured_gemm = timer.Seconds();
    const double predicted = cost_model->PredictScoringSeconds(m, n, f);

    // Full pipeline, K=1 and K=50.
    double bmm_k1 = 0;
    double bmm_k50 = 0;
    {
      BmmSolver bmm;
      bmm_k1 = TimeEndToEnd(&bmm, model, 1).total();
    }
    {
      BmmSolver bmm;
      bmm_k50 = TimeEndToEnd(&bmm, model, 50).total();
    }
    table.AddRow(
        {preset->id, FormatSeconds(predicted), FormatSeconds(measured_gemm),
         Fmt(100.0 * (predicted - measured_gemm) / measured_gemm, 1) + " %",
         FormatSeconds(bmm_k1), FormatSeconds(bmm_k50),
         Fmt(100.0 * (bmm_k50 - predicted) / bmm_k50, 1) + " %"});
  }
  table.Print();
  std::printf(
      "\nPaper shape: GEMM prediction within ~5%% of measurement; the "
      "data-dependent heap pass is unmodeled and non-negligible (>=9.5%% "
      "of the pipeline on large models, growing with K) — which is why "
      "OPTIMUS relies on online sampling instead.\n");
  return 0;
}
