// Portable variant of the 8-lane dot kernel: 8 scalar std::fma chains.
// std::fma is single-rounding (IEEE 754-2008), exactly like the vfmadd
// lanes of the AVX variants, so this TU defines the reference bit pattern
// the SIMD variants must reproduce.

#include "linalg/dot_kernel.h"

namespace mips {

Real DotKernelPortable(const Real* x, const Real* y, Index n) {
  Real lanes[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  const Index n8 = n - (n % 8);
  for (Index i = 0; i < n8; i += 8) {
    for (int j = 0; j < 8; ++j) {
      lanes[j] = std::fma(x[i + j], y[i + j], lanes[j]);
    }
  }
  return internal::ReduceDotLanes(lanes, x, y, n8, n);
}

}  // namespace mips
