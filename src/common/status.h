// Status / StatusOr: lightweight error propagation without exceptions.
//
// Follows the RocksDB/Arrow idiom: fallible library entry points return a
// Status (or StatusOr<T>), and callers either handle the error or assert on
// it at the application boundary.  Hot inner loops never construct Status.

#ifndef MIPS_COMMON_STATUS_H_
#define MIPS_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace mips {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kInternal,
  kIOError,
  kUnimplemented,
  kResourceExhausted,
  kDeadlineExceeded,
};

/// Human-readable name for a StatusCode ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
///
/// A default-constructed Status is OK.  Status is cheap to copy when OK
/// (no allocation) and carries a message only on error.
///
/// [[nodiscard]] on the class: the library is exception-free, so a
/// returned Status IS the error channel — silently dropping one turns
/// "Open failed" into undefined downstream behaviour.  Discard visibly
/// with a (void) cast if (and only if) failure is genuinely irrelevant.
/// The mips-unchecked-status clang-tidy check (tools/mips_tidy) enforces
/// the same contract even if this attribute is ever lost.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Aborts the process with the status message if not OK.  Use at
  /// application boundaries (examples, benches) where errors are fatal.
  void CheckOK() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status.  Mirrors absl::StatusOr.
/// [[nodiscard]] for the same reason as Status: dropping one loses both
/// the value and the error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /*implicit*/ StatusOr(T value) : repr_(std::move(value)) {}
  /*implicit*/ StatusOr(Status status) : repr_(std::move(status)) {
    assert(!std::get<Status>(repr_).ok() &&
           "StatusOr must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  /// Precondition: ok().
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates a non-OK Status to the caller.
#define MIPS_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::mips::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

}  // namespace mips

#endif  // MIPS_COMMON_STATUS_H_
