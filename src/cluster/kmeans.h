// Lloyd's k-means with k-means++ seeding and GEMM-accelerated assignment.
//
// MAXIMUS clusters users with plain k-means (Section III-A: it approximates
// the angular objective well while being 2-3x faster than spherical
// clustering, and hardware-efficient implementations are plentiful — here
// the assignment step is one blocked GEMM per iteration).  The paper's
// default parameters are |C| = 8 clusters and i = 3 iterations.
//
// Assign() implements the Section III-E dynamic-user path: new users skip
// clustering entirely and are attached to the nearest existing centroid.

#ifndef MIPS_CLUSTER_KMEANS_H_
#define MIPS_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace mips {

/// Parameters for KMeans / SphericalKMeans.
struct KMeansOptions {
  Index num_clusters = 8;
  int max_iterations = 3;
  uint64_t seed = 42;
  /// Use k-means++ D^2 seeding (true) or uniform random rows (false).
  bool plus_plus_init = true;
};

/// Output of a clustering run.
struct Clustering {
  /// num_clusters x f centroid matrix.
  Matrix centroids;
  /// Cluster id per input row.
  std::vector<Index> assignment;
  /// Member row ids per cluster (concatenation is a permutation of rows).
  std::vector<std::vector<Index>> members;
  /// Iterations actually executed.
  int iterations = 0;
  /// Sum of squared distances to assigned centroids after the final update.
  Real inertia = 0;
};

/// Runs Lloyd's k-means on `points` (n x f).  Empty clusters are reseeded
/// to the point farthest from its centroid.  Returns InvalidArgument when
/// n == 0, f == 0, or num_clusters <= 0; num_clusters is capped at n.
Status KMeans(const ConstRowBlock& points, const KMeansOptions& options,
              Clustering* out);

/// Nearest centroid (squared Euclidean) for a single point.
Index AssignToNearest(const Real* point, const Matrix& centroids);

/// Nearest-centroid assignment for a block of points (GEMM-accelerated).
void AssignAllToNearest(const ConstRowBlock& points, const Matrix& centroids,
                        std::vector<Index>* assignment);

/// Rebuilds the per-cluster member lists from an assignment vector.
std::vector<std::vector<Index>> MembersFromAssignment(
    const std::vector<Index>& assignment, Index num_clusters);

}  // namespace mips

#endif  // MIPS_CLUSTER_KMEANS_H_
