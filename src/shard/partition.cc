#include "shard/partition.h"

#include <algorithm>
#include <cstring>

#include "common/thread_pool.h"

namespace mips {

const char* ToString(ShardingStrategy strategy) {
  switch (strategy) {
    case ShardingStrategy::kContiguous:
      return "contiguous";
    case ShardingStrategy::kHash:
      return "hash";
    case ShardingStrategy::kGrowth:
      return "growth";
  }
  return "unknown";
}

StatusOr<ShardingStrategy> ParseShardingStrategy(const std::string& name) {
  if (name == "contiguous") return ShardingStrategy::kContiguous;
  if (name == "hash") return ShardingStrategy::kHash;
  if (name == "growth") return ShardingStrategy::kGrowth;
  return Status::InvalidArgument("unknown sharding strategy \"" + name +
                                 "\" (want contiguous, hash, or growth)");
}

int HashShardOfItem(Index global_id, int num_shards) {
  // splitmix64-style finalizer: full-avalanche, so consecutive ids land
  // on unrelated shards and norm/popularity runs in the catalog spread
  // evenly.
  uint64_t x = static_cast<uint64_t>(static_cast<uint32_t>(global_id));
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  x ^= x >> 31;
  return static_cast<int>(x % static_cast<uint64_t>(num_shards));
}

StatusOr<ItemPartition> ItemPartition::Create(const ConstRowBlock& items,
                                              int num_shards,
                                              ShardingStrategy strategy,
                                              Index growth_block) {
  if (num_shards < 1) {
    return Status::InvalidArgument("num_shards must be >= 1, got " +
                                   std::to_string(num_shards));
  }
  if (items.rows() <= 0) {
    return Status::InvalidArgument("item set must be non-empty");
  }
  if (growth_block < 0) {
    return Status::InvalidArgument("growth_block must be >= 0, got " +
                                   std::to_string(growth_block));
  }

  ItemPartition partition;
  partition.strategy_ = strategy;
  partition.num_items_ = items.rows();
  partition.shards_.resize(static_cast<std::size_t>(num_shards));

  if (strategy == ShardingStrategy::kGrowth) {
    // Fixed-size prefix blocks; the last shard absorbs all growth past
    // (S-1)*B.  With B pinned across successive Create calls, only that
    // last shard's contents change as the catalog appends.
    const Index n = items.rows();
    const Index derived =
        (n + static_cast<Index>(num_shards) - 1) /
        static_cast<Index>(num_shards);
    const Index block = growth_block > 0 ? growth_block
                                         : std::max<Index>(derived, 1);
    partition.growth_block_ = block;
    for (int s = 0; s < num_shards; ++s) {
      ItemShard& shard = partition.shards_[static_cast<std::size_t>(s)];
      const Index begin = std::min<Index>(static_cast<Index>(s) * block, n);
      const Index end = s == num_shards - 1
                            ? n
                            : std::min<Index>(begin + block, n);
      shard.global_offset = begin;
      shard.items = ConstRowBlock(end > begin ? items.Row(begin) : nullptr,
                                  end - begin, items.cols());
    }
    return partition;
  }

  if (strategy == ShardingStrategy::kContiguous) {
    const std::vector<RangeChunk> chunks =
        SplitRange(items.rows(), num_shards);
    for (int s = 0; s < num_shards; ++s) {
      ItemShard& shard = partition.shards_[static_cast<std::size_t>(s)];
      const auto begin = static_cast<Index>(chunks[static_cast<std::size_t>(s)].begin);
      const auto end = static_cast<Index>(chunks[static_cast<std::size_t>(s)].end);
      shard.global_offset = begin;
      shard.items = ConstRowBlock(
          end > begin ? items.Row(begin) : nullptr, end - begin, items.cols());
    }
    return partition;
  }

  // kHash: bucket ids, then gather each bucket's rows into owned storage.
  std::vector<std::vector<Index>> buckets(
      static_cast<std::size_t>(num_shards));
  for (Index i = 0; i < items.rows(); ++i) {
    buckets[static_cast<std::size_t>(HashShardOfItem(i, num_shards))]
        .push_back(i);
  }
  partition.gathered_.resize(static_cast<std::size_t>(num_shards));
  const Index f = items.cols();
  for (int s = 0; s < num_shards; ++s) {
    ItemShard& shard = partition.shards_[static_cast<std::size_t>(s)];
    shard.global_ids = std::move(buckets[static_cast<std::size_t>(s)]);
    Matrix& rows = partition.gathered_[static_cast<std::size_t>(s)];
    rows.Resize(static_cast<Index>(shard.global_ids.size()), f);
    for (std::size_t local = 0; local < shard.global_ids.size(); ++local) {
      std::memcpy(rows.Row(static_cast<Index>(local)),
                  items.Row(shard.global_ids[local]),
                  sizeof(Real) * static_cast<std::size_t>(f));
    }
    shard.items = ConstRowBlock(rows);
  }
  return partition;
}

int ItemPartition::ShardOfItem(Index global_id) const {
  MIPS_DCHECK_GE(global_id, 0);
  MIPS_DCHECK_LT(global_id, num_items_);
  if (strategy_ == ShardingStrategy::kHash) {
    return HashShardOfItem(global_id, num_shards());
  }
  if (strategy_ == ShardingStrategy::kGrowth) {
    return static_cast<int>(std::min<Index>(
        global_id / growth_block_, static_cast<Index>(num_shards()) - 1));
  }
  for (int s = 0; s < num_shards(); ++s) {
    const ItemShard& shard = shards_[static_cast<std::size_t>(s)];
    if (global_id >= shard.global_offset &&
        global_id < shard.global_offset + shard.num_items()) {
      return s;
    }
  }
  return -1;  // unreachable for in-range ids (DCHECKed above)
}

}  // namespace mips
