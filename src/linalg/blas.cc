#include "linalg/blas.h"

#include <algorithm>
#include <cmath>

namespace mips {

Real Dot(const Real* x, const Real* y, Index n) {
  // Four independent accumulators break the FMA dependency chain; GCC/Clang
  // vectorize each lane with -O3 -march=native.
  Real acc0 = 0, acc1 = 0, acc2 = 0, acc3 = 0;
  Index i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 += x[i + 0] * y[i + 0];
    acc1 += x[i + 1] * y[i + 1];
    acc2 += x[i + 2] * y[i + 2];
    acc3 += x[i + 3] * y[i + 3];
  }
  for (; i < n; ++i) acc0 += x[i] * y[i];
  return (acc0 + acc1) + (acc2 + acc3);
}

Real DotNaive(const Real* x, const Real* y, Index n) {
  Real acc = 0;
  for (Index i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

Real Nrm2Squared(const Real* x, Index n) { return Dot(x, x, n); }

Real Nrm2(const Real* x, Index n) { return std::sqrt(Nrm2Squared(x, n)); }

void Axpy(Real alpha, const Real* x, Real* y, Index n) {
  for (Index i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Scale(Real alpha, Real* x, Index n) {
  for (Index i = 0; i < n; ++i) x[i] *= alpha;
}

void RowNorms(const Real* data, Index rows, Index cols, Real* out) {
  for (Index r = 0; r < rows; ++r) {
    out[r] = Nrm2(data + static_cast<std::size_t>(r) * cols, cols);
  }
}

Real CosineSimilarity(const Real* x, const Real* y, Index n) {
  const Real nx = Nrm2(x, n);
  const Real ny = Nrm2(y, n);
  if (nx == 0 || ny == 0) return 0;
  const Real cos = Dot(x, y, n) / (nx * ny);
  return std::clamp(cos, Real{-1}, Real{1});
}

}  // namespace mips
